"""Unit and property tests for the truncated Pareto interarrival law."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate

from repro.core.truncated_pareto import TruncatedPareto

LAW = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)
INFINITE = TruncatedPareto(theta=0.1, alpha=1.4)

law_params = st.tuples(
    st.floats(min_value=1e-3, max_value=10.0),  # theta
    st.floats(min_value=1.01, max_value=1.99),  # alpha
    st.one_of(st.floats(min_value=1e-2, max_value=1e3), st.just(math.inf)),  # cutoff
)


class TestConstruction:
    def test_rejects_nonpositive_theta(self):
        with pytest.raises(ValueError, match="theta"):
            TruncatedPareto(theta=0.0, alpha=1.5)

    def test_rejects_alpha_at_one(self):
        with pytest.raises(ValueError, match="alpha"):
            TruncatedPareto(theta=1.0, alpha=1.0)

    def test_rejects_alpha_at_two(self):
        with pytest.raises(ValueError, match="alpha"):
            TruncatedPareto(theta=1.0, alpha=2.0)

    def test_rejects_negative_cutoff(self):
        with pytest.raises(ValueError, match="cutoff"):
            TruncatedPareto(theta=1.0, alpha=1.5, cutoff=-1.0)

    def test_infinite_cutoff_allowed(self):
        assert INFINITE.cutoff == math.inf

    def test_from_hurst_mapping(self):
        law = TruncatedPareto.from_hurst(hurst=0.8, theta=0.1)
        assert law.alpha == pytest.approx(1.4)
        assert law.hurst == pytest.approx(0.8)

    def test_from_hurst_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="hurst"):
            TruncatedPareto.from_hurst(hurst=0.5, theta=0.1)

    def test_with_cutoff_preserves_shape(self):
        truncated = INFINITE.with_cutoff(2.0)
        assert truncated.theta == INFINITE.theta
        assert truncated.alpha == INFINITE.alpha
        assert truncated.cutoff == 2.0


class TestMoments:
    def test_mean_matches_eq25_at_infinity(self):
        # E[T] = theta / (alpha - 1) for T_c = inf.
        assert INFINITE.mean == pytest.approx(0.1 / 0.4)

    def test_mean_matches_numeric_integration(self):
        numeric, _ = integrate.quad(lambda t: float(LAW.sf(t)), 0.0, LAW.cutoff)
        assert LAW.mean == pytest.approx(numeric, rel=1e-8)

    def test_second_moment_matches_numeric_integration(self):
        numeric, _ = integrate.quad(lambda t: 2.0 * t * float(LAW.sf(t)), 0.0, LAW.cutoff)
        assert LAW.second_moment == pytest.approx(numeric, rel=1e-8)

    def test_variance_consistency(self):
        assert LAW.variance == pytest.approx(LAW.second_moment - LAW.mean**2)
        assert LAW.std == pytest.approx(math.sqrt(LAW.variance))

    def test_infinite_cutoff_has_infinite_variance(self):
        assert INFINITE.second_moment == math.inf
        assert INFINITE.variance == math.inf
        assert INFINITE.std == math.inf

    def test_truncation_reduces_mean(self):
        assert LAW.mean < INFINITE.mean

    @given(law_params)
    @settings(max_examples=50, deadline=None)
    def test_mean_positive_and_below_cutoff(self, params):
        theta, alpha, cutoff = params
        law = TruncatedPareto(theta=theta, alpha=alpha, cutoff=cutoff)
        assert law.mean > 0.0
        if cutoff != math.inf:
            assert law.mean < cutoff


class TestCalibration:
    def test_from_mean_interval_infinity(self):
        law = TruncatedPareto.from_mean_interval(mean_interval=0.08, alpha=1.34)
        assert law.mean == pytest.approx(0.08)
        assert law.theta == pytest.approx(0.08 * 0.34)

    def test_paper_calibration_uses_infinite_cutoff_theta(self):
        # The paper fixes theta from T_c = inf even for finite cutoffs.
        law = TruncatedPareto.from_mean_interval(mean_interval=0.08, alpha=1.34, cutoff=2.0)
        assert law.theta == pytest.approx(0.08 * 0.34)
        assert law.mean < 0.08  # finite cutoff shortens the mean

    def test_exact_calibration_at_finite_cutoff(self):
        law = TruncatedPareto.from_mean_interval(
            mean_interval=0.08, alpha=1.34, cutoff=2.0, calibrate_at_infinity=False
        )
        assert law.mean == pytest.approx(0.08, rel=1e-6)

    def test_exact_calibration_rejects_unreachable_mean(self):
        with pytest.raises(ValueError, match="mean_interval"):
            TruncatedPareto.from_mean_interval(
                mean_interval=3.0, alpha=1.5, cutoff=2.0, calibrate_at_infinity=False
            )

    def test_from_hurst_and_mean_interval(self):
        law = TruncatedPareto.from_hurst_and_mean_interval(hurst=0.83, mean_interval=0.08)
        assert law.alpha == pytest.approx(3.0 - 2.0 * 0.83)
        assert law.mean == pytest.approx(0.08)


class TestDistributionFunctions:
    def test_sf_at_zero_is_one(self):
        assert LAW.sf(0.0) == pytest.approx(1.0)

    def test_sf_is_zero_at_and_beyond_cutoff(self):
        assert LAW.sf(LAW.cutoff) == 0.0
        assert LAW.sf(LAW.cutoff + 1.0) == 0.0

    def test_sf_matches_eq6_inside_support(self):
        t = 0.7
        assert LAW.sf(t) == pytest.approx(((t + 0.1) / 0.1) ** (-1.4))

    def test_atom_mass(self):
        expected = ((5.0 + 0.1) / 0.1) ** (-1.4)
        assert LAW.atom_at_cutoff == pytest.approx(expected)
        assert INFINITE.atom_at_cutoff == 0.0

    def test_sf_inclusive_differs_only_at_cutoff(self):
        assert LAW.sf_inclusive(LAW.cutoff) == pytest.approx(LAW.atom_at_cutoff)
        assert LAW.sf_inclusive(1.0) == pytest.approx(LAW.sf(1.0))

    def test_cdf_left_excludes_atom(self):
        assert LAW.cdf(LAW.cutoff) == pytest.approx(1.0)
        assert LAW.cdf_left(LAW.cutoff) == pytest.approx(1.0 - LAW.atom_at_cutoff)

    def test_cdf_monotone_on_array(self):
        t = np.linspace(-1.0, 6.0, 200)
        cdf = np.asarray(LAW.cdf(t))
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(1.0)

    def test_pdf_integrates_to_continuous_mass(self):
        numeric, _ = integrate.quad(lambda t: float(LAW.pdf(t)), 0.0, LAW.cutoff, limit=200)
        assert numeric == pytest.approx(1.0 - LAW.atom_at_cutoff, rel=1e-6)

    def test_pdf_zero_outside_support(self):
        assert LAW.pdf(-0.5) == 0.0
        assert LAW.pdf(LAW.cutoff + 0.1) == 0.0

    def test_residual_sf_boundaries(self):
        assert LAW.residual_sf(0.0) == pytest.approx(1.0)
        assert LAW.residual_sf(LAW.cutoff) == 0.0

    def test_residual_sf_matches_renewal_integral(self):
        # Eq. 5: Pr{tau_res >= t} = int_t^inf sf(x) dx / E[T].
        t = 1.3
        numeric, _ = integrate.quad(lambda x: float(LAW.sf(x)), t, LAW.cutoff)
        assert LAW.residual_sf(t) == pytest.approx(numeric / LAW.mean, rel=1e-8)

    def test_residual_sf_infinite_cutoff_power_law(self):
        t = 2.0
        expected = ((t + 0.1) / 0.1) ** (1.0 - 1.4)
        assert INFINITE.residual_sf(t) == pytest.approx(expected)

    @given(law_params, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=80, deadline=None)
    def test_sf_bounds_and_order(self, params, t):
        theta, alpha, cutoff = params
        law = TruncatedPareto(theta=theta, alpha=alpha, cutoff=cutoff)
        sf = float(law.sf(t))
        sf_inc = float(law.sf_inclusive(t))
        assert 0.0 <= sf <= sf_inc <= 1.0
        assert float(law.cdf(t)) == pytest.approx(1.0 - sf)
        assert float(law.cdf_left(t)) == pytest.approx(1.0 - sf_inc)


class TestSamplingAndQuantiles:
    def test_samples_respect_cutoff(self):
        rng = np.random.default_rng(0)
        samples = LAW.sample(20_000, rng)
        assert samples.min() >= 0.0
        assert samples.max() <= LAW.cutoff

    def test_sample_mean_matches_analytic(self):
        rng = np.random.default_rng(1)
        samples = LAW.sample(200_000, rng)
        assert samples.mean() == pytest.approx(LAW.mean, rel=0.02)

    def test_sample_atom_frequency(self):
        rng = np.random.default_rng(2)
        samples = LAW.sample(200_000, rng)
        frequency = np.mean(samples == LAW.cutoff)
        assert frequency == pytest.approx(LAW.atom_at_cutoff, rel=0.15)

    def test_sample_zero_size(self):
        rng = np.random.default_rng(3)
        assert LAW.sample(0, rng).size == 0

    def test_sample_negative_size_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError, match="size"):
            LAW.sample(-1, rng)

    def test_quantile_inverts_cdf(self):
        for q in (0.1, 0.5, 0.9):
            t = float(LAW.quantile(q))
            assert float(LAW.cdf(t)) == pytest.approx(q, abs=1e-9)

    def test_quantile_above_atom_maps_to_cutoff(self):
        q = 1.0 - LAW.atom_at_cutoff / 2.0
        assert float(LAW.quantile(q)) == LAW.cutoff

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            LAW.quantile(1.5)

    @given(st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone(self, q):
        lower = float(LAW.quantile(q))
        upper = float(LAW.quantile(min(q + 1e-3, 1.0)))
        assert lower <= upper
