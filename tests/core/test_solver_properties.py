"""Property-based solver invariants over randomized model instances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss import zero_buffer_loss_rate
from repro.core.marginal import DiscreteMarginal
from repro.core.solver import FluidQueue, SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto

FAST = SolverConfig(
    initial_bins=32, max_bins=256, relative_gap=0.5, max_iterations=2_000,
    block_iterations=25,
)


@st.composite
def queue_instances(draw) -> FluidQueue:
    """Random small (marginal, law, queue) triples with peak above service."""
    n_levels = draw(st.integers(min_value=2, max_value=5))
    increments = [draw(st.floats(min_value=0.1, max_value=2.0)) for _ in range(n_levels)]
    rates = np.concatenate([[0.0], np.cumsum(increments)])[:n_levels]
    weights = np.array(
        [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(n_levels)]
    )
    marginal = DiscreteMarginal(rates=rates, probs=weights / weights.sum())
    law = TruncatedPareto(
        theta=draw(st.floats(min_value=0.01, max_value=0.5)),
        alpha=draw(st.floats(min_value=1.05, max_value=1.95)),
        cutoff=draw(st.floats(min_value=0.5, max_value=20.0)),
    )
    source = CutoffFluidSource(marginal=marginal, interarrival=law)
    # Service strictly between the mean and the peak so loss is non-trivial.
    mean, peak = marginal.mean, marginal.peak
    fraction = draw(st.floats(min_value=0.15, max_value=0.85))
    service_rate = mean + fraction * (peak - mean)
    if service_rate <= 0.0:
        service_rate = 0.5 * peak
    buffer_size = draw(st.floats(min_value=0.05, max_value=2.0))
    return FluidQueue(source=source, service_rate=service_rate, buffer_size=buffer_size)


class TestSolverInvariants:
    @given(queue_instances())
    @settings(max_examples=25, deadline=None)
    def test_bounds_are_probabilities_and_ordered(self, queue):
        result = queue.loss_rate(FAST)
        assert 0.0 <= result.lower <= result.upper <= 1.0 + 1e-9

    @given(queue_instances())
    @settings(max_examples=25, deadline=None)
    def test_loss_below_bufferless_bound(self, queue):
        """Any buffer can only reduce loss below the B = 0 closed form."""
        result = queue.loss_rate(FAST)
        ceiling = zero_buffer_loss_rate(queue.source, queue.service_rate)
        assert result.lower <= ceiling + 1e-9

    @given(queue_instances())
    @settings(max_examples=15, deadline=None)
    def test_doubling_buffer_never_increases_lower_bound_estimate(self, queue):
        small = queue.loss_rate(FAST)
        bigger = FluidQueue(
            source=queue.source,
            service_rate=queue.service_rate,
            buffer_size=queue.buffer_size * 2.0,
        ).loss_rate(FAST)
        # Rigorous bounds of nested buffers must be consistent: the larger
        # buffer's lower bound cannot exceed the smaller buffer's upper bound.
        assert bigger.lower <= small.upper + 1e-9

    @given(queue_instances())
    @settings(max_examples=15, deadline=None)
    def test_occupancy_pmfs_well_formed(self, queue):
        bounds = queue.stationary_occupancy(FAST)
        assert bounds.lower_pmf.sum() == pytest.approx(1.0, abs=1e-6)
        assert bounds.upper_pmf.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(bounds.lower_pmf >= 0.0)
        assert np.all(bounds.upper_pmf >= 0.0)
        assert bounds.lower_mean <= bounds.upper_mean + 1e-9


class TestStationaryOccupancy:
    def test_mean_occupancy_brackets_simulation(self, small_source, rng):
        from repro.queueing.fluid_sim import simulate_source_queue

        queue = FluidQueue(source=small_source, service_rate=1.25, buffer_size=1.0)
        bounds = queue.stationary_occupancy(SolverConfig(relative_gap=0.1))
        sim = simulate_source_queue(
            small_source, 1.25, 1.0, intervals=200_000, rng=rng, warmup_intervals=5_000
        )
        slack = 0.05
        assert bounds.lower_mean - slack <= sim.mean_occupancy <= bounds.upper_mean + slack

    def test_rejects_trivial_queues(self, small_source):
        with pytest.raises(ValueError, match="positive buffer"):
            FluidQueue(
                source=small_source, service_rate=1.25, buffer_size=0.0
            ).stationary_occupancy()
        with pytest.raises(ValueError, match="exceed"):
            FluidQueue(
                source=small_source, service_rate=5.0, buffer_size=1.0
            ).stationary_occupancy()


class TestConvolvedMarginal:
    def test_mean_adds(self, onoff_marginal, three_level_marginal):
        combined = onoff_marginal.convolved(three_level_marginal)
        assert combined.mean == pytest.approx(
            onoff_marginal.mean + three_level_marginal.mean
        )

    def test_variance_adds(self, onoff_marginal, three_level_marginal):
        combined = onoff_marginal.convolved(three_level_marginal)
        assert combined.variance == pytest.approx(
            onoff_marginal.variance + three_level_marginal.variance, rel=1e-9
        )

    def test_support_is_sum_grid(self, onoff_marginal):
        combined = onoff_marginal.convolved(onoff_marginal)
        np.testing.assert_allclose(combined.rates, [0.0, 2.0, 4.0])
        np.testing.assert_allclose(combined.probs, [0.25, 0.5, 0.25])

    def test_rebinned_when_large(self, rng):
        samples = rng.gamma(4.0, 1.0, 5000)
        wide = DiscreteMarginal.from_samples(samples, bins=50)
        combined = wide.convolved(wide, max_levels=32)
        assert combined.size <= 32
        assert combined.mean == pytest.approx(2 * wide.mean, rel=1e-6)
