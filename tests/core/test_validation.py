"""Tests for the shared validators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.validation import (
    as_float_array,
    check_cutoff,
    check_in_open_interval,
    check_nonnegative,
    check_positive,
    check_probability,
    check_probability_vector,
    check_rate_vector,
)


class TestScalars:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        for bad in (0.0, -1.0, math.nan, math.inf):
            with pytest.raises(ValueError, match="x"):
                check_positive("x", bad)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError, match="x"):
            check_nonnegative("x", -1e-9)

    def test_check_in_open_interval(self):
        assert check_in_open_interval("x", 0.5, 0.0, 1.0) == 0.5
        for bad in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ValueError, match="x"):
                check_in_open_interval("x", bad, 0.0, 1.0)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError, match="p"):
            check_probability("p", 1.1)

    def test_check_cutoff_accepts_infinity(self):
        assert check_cutoff("c", math.inf) == math.inf
        assert check_cutoff("c", 2.0) == 2.0
        with pytest.raises(ValueError, match="c"):
            check_cutoff("c", 0.0)
        with pytest.raises(ValueError, match="c"):
            check_cutoff("c", math.nan)


class TestArrays:
    def test_as_float_array(self):
        out = as_float_array("v", [1, 2, 3])
        assert out.dtype == np.float64
        with pytest.raises(ValueError, match="one-dimensional"):
            as_float_array("v", [[1.0]])
        with pytest.raises(ValueError, match="empty"):
            as_float_array("v", [])
        with pytest.raises(ValueError, match="finite"):
            as_float_array("v", [1.0, math.nan])

    def test_check_probability_vector(self):
        out = check_probability_vector("p", [0.25, 0.75])
        assert out.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector("p", [-0.1, 1.1])
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("p", [0.3, 0.3])

    def test_check_rate_vector(self):
        out = check_rate_vector("r", [0.0, 1.0, 2.0])
        assert out.size == 3
        with pytest.raises(ValueError, match="increasing"):
            check_rate_vector("r", [1.0, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            check_rate_vector("r", [-1.0, 1.0])
