"""Spectral stepping kernel: equivalence, bound ordering and counters.

The v2 kernel advances both occupancy chains with one batched rfft/irfft
pair over cached increment spectra.  These tests pin its contract:

* stepping agrees with the direct-convolution reference within tight
  tolerance (the kernels share exact semantics, only round-off differs);
* full solves over a golden grid of figure-style configurations preserve
  bound ordering, convergence/negligible flags, and converged estimates
  relative to the direct reference;
* the kernel-level counters (transforms, FFT vs boundary seconds, steps
  per refinement level) account for exactly the work performed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.solver import (
    DEFAULT_FFT_THRESHOLD_BINS,
    SOLVER_VERSION,
    FluidQueue,
    SolverConfig,
    _BoundedChains,
)
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.core.workload import WorkloadLaw

SPECTRAL = SolverConfig(
    initial_bins=64, max_bins=1024, relative_gap=0.1, max_iterations=20_000,
    use_fft=True, fft_threshold_bins=0,
)
DIRECT = SolverConfig(
    initial_bins=64, max_bins=1024, relative_gap=0.1, max_iterations=20_000,
    use_fft=False,
)

# Figure-style golden grid: (cutoff_s, utilization, normalized_buffer_s).
GOLDEN_GRID = [
    (0.5, 0.7, 0.3),
    (0.5, 0.9, 0.1),
    (5.0, 0.8, 0.5),
    (5.0, 1.05, 0.2),
    (20.0, 0.85, 1.0),
    (100.0, 0.9, 0.4),
]


def _source(cutoff: float) -> CutoffFluidSource:
    return CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=cutoff),
    )


def _chains(bins: int, spectral: bool, **overrides) -> _BoundedChains:
    kwargs = dict(
        workload=WorkloadLaw(source=_source(5.0), service_rate=1.25),
        buffer_size=1.0,
        bins=bins,
        use_fft=spectral,
        fft_threshold_bins=0,
    )
    kwargs.update(overrides)
    return _BoundedChains(**kwargs)


class TestSteppingEquivalence:
    @pytest.mark.parametrize("bins", [16, 64, 128, 256, 512])
    def test_loss_bounds_match_direct(self, bins):
        spectral = _chains(bins, spectral=True)
        direct = _chains(bins, spectral=False)
        spectral.iterate(50)
        direct.iterate(50)
        for a, b in zip(spectral.loss_bounds(), direct.loss_bounds()):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-13)

    @pytest.mark.parametrize("bins", [64, 256])
    def test_pmfs_match_direct(self, bins):
        spectral = _chains(bins, spectral=True)
        direct = _chains(bins, spectral=False)
        spectral.iterate(40)
        direct.iterate(40)
        np.testing.assert_allclose(spectral.lower_pmf, direct.lower_pmf, atol=1e-12)
        np.testing.assert_allclose(spectral.upper_pmf, direct.upper_pmf, atol=1e-12)

    def test_equivalence_survives_refinement(self):
        spectral = _chains(64, spectral=True)
        direct = _chains(64, spectral=False)
        for _ in range(2):
            spectral.iterate(30)
            direct.iterate(30)
            spectral = spectral.refined()
            direct = direct.refined()
        spectral.iterate(30)
        direct.iterate(30)
        for a, b in zip(spectral.loss_bounds(), direct.loss_bounds()):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-13)

    def test_threshold_routes_small_grids_to_direct(self):
        below = _chains(64, spectral=True, fft_threshold_bins=DEFAULT_FFT_THRESHOLD_BINS)
        assert not below.spectral
        at = _chains(
            DEFAULT_FFT_THRESHOLD_BINS, spectral=True,
            fft_threshold_bins=DEFAULT_FFT_THRESHOLD_BINS,
        )
        assert at.spectral
        assert not _chains(4096, spectral=False).spectral


class TestGoldenGridSolves:
    @pytest.mark.parametrize("cutoff,utilization,buffer_s", GOLDEN_GRID)
    def test_spectral_preserves_reference_solve(self, cutoff, utilization, buffer_s):
        source = _source(cutoff)
        queue = FluidQueue.from_normalized(
            source=source, utilization=utilization, normalized_buffer=buffer_s
        )
        spectral = queue.loss_rate(SPECTRAL)
        reference = queue.loss_rate(DIRECT)
        # Bound ordering (Proposition II.1) and the paper's flags survive.
        assert 0.0 <= spectral.lower <= spectral.upper
        assert spectral.converged == reference.converged
        assert spectral.negligible == reference.negligible
        assert spectral.bins == reference.bins
        assert spectral.iterations == reference.iterations
        if spectral.converged:
            assert spectral.estimate == pytest.approx(reference.estimate, rel=1e-9)
            assert spectral.lower == pytest.approx(reference.lower, rel=1e-9, abs=1e-13)
            assert spectral.upper == pytest.approx(reference.upper, rel=1e-9, abs=1e-13)

    @pytest.mark.parametrize("cutoff,utilization,buffer_s", GOLDEN_GRID)
    def test_default_config_orders_bounds(self, cutoff, utilization, buffer_s):
        result = FluidQueue.from_normalized(
            source=_source(cutoff), utilization=utilization, normalized_buffer=buffer_s
        ).loss_rate(SolverConfig(relative_gap=0.1, max_iterations=20_000))
        assert 0.0 <= result.lower <= result.upper


class TestKernelCounters:
    def test_spectral_transform_count_is_exact(self):
        chains = _chains(128, spectral=True)
        chains.iterate(10)
        # 2 transforms for the cached increment spectra + 2 per step.
        assert chains.counters.transforms == 2 + 2 * 10
        chains.iterate(5)
        assert chains.counters.transforms == 2 + 2 * 15

    def test_direct_path_performs_no_transforms(self):
        chains = _chains(128, spectral=False)
        chains.iterate(10)
        assert chains.counters.transforms == 0
        assert chains.counters.fft_seconds >= 0.0

    def test_plan_is_cached_across_blocks(self):
        chains = _chains(128, spectral=True)
        chains.iterate(3)
        plan = chains._plan
        assert plan is not None
        chains.iterate(3)
        assert chains._plan is plan

    def test_counters_carry_across_refinement(self):
        chains = _chains(64, spectral=True)
        chains.iterate(20)
        refined = chains.refined()
        assert refined.counters is chains.counters
        refined.iterate(10)
        assert chains.counters.levels == [[64, 20], [128, 10]]

    def test_result_stats_account_for_all_iterations(self):
        source = _source(5.0)
        result = FluidQueue(
            source=source, service_rate=1.25, buffer_size=1.0
        ).loss_rate(SolverConfig(relative_gap=0.02))
        stats = result.stats
        assert stats is not None
        assert stats.total_steps == result.iterations
        assert stats.steps_per_level[-1][0] == result.bins
        assert stats.fft_seconds >= 0.0
        assert stats.boundary_seconds >= 0.0
        assert stats.kernel_seconds == pytest.approx(
            stats.fft_seconds + stats.boundary_seconds
        )
        # Refinement levels double the bin count monotonically.
        level_bins = [bins for bins, _ in stats.steps_per_level]
        assert level_bins == sorted(level_bins)

    def test_trivial_results_carry_no_stats(self):
        source = _source(5.0)
        result = FluidQueue(
            source=source, service_rate=2.5, buffer_size=1.0
        ).loss_rate()
        assert result.stats is None

    def test_stats_excluded_from_equality(self):
        queue = FluidQueue(source=_source(5.0), service_rate=1.25, buffer_size=1.0)
        fast = SolverConfig(initial_bins=32, max_bins=64, relative_gap=0.5)
        first = queue.loss_rate(fast)
        second = queue.loss_rate(fast)
        assert first == second  # timings differ, identity must not


def test_solver_version_is_current():
    """The stacked spectral kernel is solver revision 3; bump alongside kernel changes."""
    assert SOLVER_VERSION == 3
