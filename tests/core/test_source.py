"""Tests for the cutoff fluid source: covariance Eq. 8, sampling, calibration."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.source import CutoffFluidSource, SourcePath
from repro.core.truncated_pareto import TruncatedPareto


class TestCovariance:
    def test_lag_zero_equals_variance(self, small_source):
        assert small_source.autocovariance(0.0) == pytest.approx(
            small_source.rate_variance
        )

    def test_zero_beyond_cutoff(self, small_source):
        assert small_source.autocovariance(small_source.cutoff) == 0.0
        assert small_source.autocovariance(small_source.cutoff * 2) == 0.0

    def test_monotone_decreasing(self, small_source):
        lags = np.linspace(0.0, small_source.cutoff, 100)
        cov = np.asarray(small_source.autocovariance(lags))
        assert np.all(np.diff(cov) <= 1e-12)

    def test_autocorrelation_normalized(self, small_source):
        lags = np.linspace(0.0, 4.0, 50)
        rho = np.asarray(small_source.autocorrelation(lags))
        assert rho[0] == pytest.approx(1.0)
        assert np.all((rho >= 0.0) & (rho <= 1.0))

    def test_infinite_cutoff_power_law_tail(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal,
            interarrival=TruncatedPareto(theta=0.1, alpha=1.4),
        )
        # phi(t) ~ t^{1-alpha}: doubling the lag scales by 2^{-0.4}.
        t = 50.0
        ratio = source.autocovariance(2 * t) / source.autocovariance(t)
        assert ratio == pytest.approx(2.0 ** (1.0 - 1.4), rel=0.01)

    def test_empirical_covariance_matches_eq8(self, small_source, rng):
        # Sample a long path, bin it finely, compare the ACF at a few lags.
        bin_width = 0.05
        trace = small_source.rate_trace(duration=8000.0, bin_width=bin_width, rng=rng)
        centered = trace - trace.mean()
        for lag_bins in (4, 20, 40):
            empirical = float(np.mean(centered[:-lag_bins] * centered[lag_bins:]))
            # Binned rates smear the covariance over +-1 bin; integrate the
            # model covariance over the smear window for a fair target.
            lag = lag_bins * bin_width
            model = float(small_source.autocovariance(lag))
            assert empirical == pytest.approx(model, abs=0.12 * small_source.rate_variance)

    def test_cumulative_arrival_variance_small_t(self, small_source):
        # Var[A(t)] ~ sigma^2 t^2 for t << correlation time.
        t = 1e-3
        variance = small_source.cumulative_arrival_variance(t)
        assert variance == pytest.approx(small_source.rate_variance * t**2, rel=0.01)

    def test_cumulative_arrival_variance_monotone(self, small_source):
        values = [small_source.cumulative_arrival_variance(t) for t in (0.5, 1.0, 2.0, 8.0)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestConstructionAndRebinding:
    def test_from_hurst_calibration(self, onoff_marginal):
        source = CutoffFluidSource.from_hurst(
            marginal=onoff_marginal, hurst=0.83, mean_interval=0.08, cutoff=5.0
        )
        assert source.hurst == pytest.approx(0.83)
        assert source.interarrival.theta == pytest.approx(0.08 * (3 - 2 * 0.83 - 1))

    def test_with_cutoff_round_trip(self, small_source):
        changed = small_source.with_cutoff(1.0)
        assert changed.cutoff == 1.0
        assert changed.marginal is small_source.marginal
        assert changed.interarrival.theta == small_source.interarrival.theta

    def test_with_marginal(self, small_source, three_level_marginal):
        changed = small_source.with_marginal(three_level_marginal)
        assert changed.mean_rate == pytest.approx(three_level_marginal.mean)
        assert changed.interarrival is small_source.interarrival

    def test_with_hurst_keep_theta(self, small_source):
        changed = small_source.with_hurst(0.9, keep_theta=True)
        assert changed.hurst == pytest.approx(0.9)
        assert changed.interarrival.theta == small_source.interarrival.theta

    def test_with_hurst_recalibrated(self, small_source):
        original_mean_at_inf = small_source.interarrival.theta / (
            small_source.interarrival.alpha - 1.0
        )
        changed = small_source.with_hurst(0.9, keep_theta=False)
        new_mean_at_inf = changed.interarrival.theta / (changed.interarrival.alpha - 1.0)
        assert new_mean_at_inf == pytest.approx(original_mean_at_inf)


class TestSampling:
    def test_sample_path_shapes(self, small_source, rng):
        path = small_source.sample_path(1000, rng)
        assert path.durations.shape == (1000,)
        assert path.rates.shape == (1000,)
        assert path.total_time > 0.0
        assert path.total_work >= 0.0

    def test_sample_path_statistics(self, small_source, rng):
        path = small_source.sample_path(100_000, rng)
        assert path.durations.mean() == pytest.approx(small_source.mean_interval, rel=0.02)
        assert path.rates.mean() == pytest.approx(small_source.mean_rate, rel=0.02)

    def test_sample_path_rejects_zero(self, small_source, rng):
        with pytest.raises(ValueError, match="intervals"):
            small_source.sample_path(0, rng)

    def test_rate_trace_length_and_mean(self, small_source, rng):
        trace = small_source.rate_trace(duration=200.0, bin_width=0.1, rng=rng)
        assert trace.size == 2000
        assert trace.mean() == pytest.approx(small_source.mean_rate, rel=0.15)

    def test_rate_trace_nonnegative(self, small_source, rng):
        trace = small_source.rate_trace(duration=50.0, bin_width=0.05, rng=rng)
        assert np.all(trace >= -1e-12)


class TestSourcePath:
    def test_binning_conserves_work(self):
        path = SourcePath(
            durations=np.array([1.0, 0.5, 2.0, 0.5]), rates=np.array([2.0, 0.0, 1.0, 4.0])
        )
        binned = path.to_binned_rates(0.25)
        # Total binned work equals total path work over the covered bins.
        covered = binned.size * 0.25
        assert covered == pytest.approx(path.total_time)
        assert binned.sum() * 0.25 == pytest.approx(path.total_work)

    def test_binning_exact_values(self):
        # Rate 2 for 1s then rate 0 for 1s, binned at 0.5s.
        path = SourcePath(durations=np.array([1.0, 1.0]), rates=np.array([2.0, 0.0]))
        np.testing.assert_allclose(path.to_binned_rates(0.5), [2.0, 2.0, 0.0, 0.0])

    def test_binning_splits_partial_intervals(self):
        # Rate 3 for 0.5s then rate 1 for 1.5s; first 1s bin mixes both.
        path = SourcePath(durations=np.array([0.5, 1.5]), rates=np.array([3.0, 1.0]))
        np.testing.assert_allclose(path.to_binned_rates(1.0), [2.0, 1.0])

    def test_epochs(self):
        path = SourcePath(durations=np.array([1.0, 2.0]), rates=np.array([1.0, 1.0]))
        np.testing.assert_allclose(path.epochs, [0.0, 1.0, 3.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            SourcePath(durations=np.array([1.0]), rates=np.array([1.0, 2.0]))

    def test_too_short_for_one_bin(self):
        path = SourcePath(durations=np.array([0.1]), rates=np.array([1.0]))
        with pytest.raises(ValueError, match="bin"):
            path.to_binned_rates(1.0)
