"""Tests for the canonical payload/fingerprint encoding."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.fingerprint import PAYLOAD_VERSION, payload_of, restore, stable_hash
from repro.core.marginal import DiscreteMarginal
from repro.core.solver import SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto


class TestPayloads:
    def test_pareto_round_trip_is_exact(self):
        law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)
        clone = restore(payload_of(law))
        assert clone.theta == law.theta
        assert clone.alpha == law.alpha
        assert clone.cutoff == law.cutoff

    def test_infinite_cutoff_survives(self):
        law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=math.inf)
        payload = payload_of(law)
        assert payload["cutoff"] == "inf"
        assert restore(payload).cutoff == math.inf

    def test_marginal_round_trip(self, three_level_marginal):
        clone = restore(payload_of(three_level_marginal))
        np.testing.assert_allclose(clone.rates, three_level_marginal.rates)
        np.testing.assert_allclose(clone.probs, three_level_marginal.probs)

    def test_source_round_trip(self, small_source):
        clone = restore(payload_of(small_source))
        assert clone.mean_rate == pytest.approx(small_source.mean_rate)
        assert clone.cutoff == small_source.cutoff
        assert clone.hurst == pytest.approx(small_source.hurst)

    def test_config_round_trip(self):
        config = SolverConfig(initial_bins=64, relative_gap=0.3, use_fft=False)
        assert restore(payload_of(config)) == config

    def test_none_config_normalizes_to_default(self):
        assert payload_of(None) == payload_of(SolverConfig())
        assert restore(payload_of(None)) == SolverConfig()

    def test_payloads_are_json_serializable(self, small_source):
        for obj in (small_source, small_source.marginal, small_source.interarrival, None):
            json.dumps(payload_of(obj))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="payload"):
            payload_of(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            restore({"kind": "mystery"})


class TestStableHash:
    def test_deterministic(self, small_source):
        assert stable_hash(payload_of(small_source)) == stable_hash(payload_of(small_source))

    def test_sensitive_to_content(self, small_source):
        a = stable_hash(payload_of(small_source))
        b = stable_hash(payload_of(small_source.with_cutoff(2.0)))
        assert a != b

    def test_independent_of_dict_ordering(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_version_participates(self):
        # The version is baked into the hashed material, so bumping
        # PAYLOAD_VERSION invalidates every stored key by construction.
        material = json.dumps(
            {"version": PAYLOAD_VERSION, "payload": {"kind": "x"}},
            sort_keys=True,
            separators=(",", ":"),
        )
        assert "version" in material

    def test_equal_marginals_built_differently_hash_identically(self):
        # Construction route must not matter, only the stored values.
        a = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
        b = DiscreteMarginal(
            rates=np.array([0.0, 2.0]), probs=np.array([0.5, 0.5])
        )
        assert stable_hash(payload_of(a)) == stable_hash(payload_of(b))


class TestPickleExactness:
    def test_pickle_preserves_probability_bits(self):
        import pickle

        # probs that do not renormalize to themselves exactly
        marginal = DiscreteMarginal(rates=[0.0, 1.0, 4.0], probs=[0.1, 0.2, 0.7])
        clone = pickle.loads(pickle.dumps(marginal))
        np.testing.assert_array_equal(clone.probs, marginal.probs)

    def test_pickle_preserves_source_bits(self, small_source):
        import pickle

        clone = pickle.loads(pickle.dumps(small_source))
        np.testing.assert_array_equal(clone.marginal.probs, small_source.marginal.probs)
        assert clone.interarrival == small_source.interarrival


def test_source_fingerprint_stable_via_pickle(small_source):
    """The cache-key contract: the same source hashes identically after
    crossing a (simulated) process boundary."""
    import pickle

    clone = pickle.loads(pickle.dumps(small_source))
    assert stable_hash(payload_of(clone)) == stable_hash(payload_of(small_source))
