"""Tests for the canonical payload/fingerprint encoding."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.fingerprint import PAYLOAD_VERSION, payload_of, restore, stable_hash
from repro.core.marginal import DiscreteMarginal
from repro.core.solver import DEFAULT_FFT_THRESHOLD_BINS, SOLVER_VERSION, SolverConfig
from repro.core.truncated_pareto import TruncatedPareto


class TestPayloads:
    def test_pareto_round_trip_is_exact(self):
        law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)
        clone = restore(payload_of(law))
        assert clone.theta == law.theta
        assert clone.alpha == law.alpha
        assert clone.cutoff == law.cutoff

    def test_infinite_cutoff_survives(self):
        law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=math.inf)
        payload = payload_of(law)
        assert payload["cutoff"] == "inf"
        assert restore(payload).cutoff == math.inf

    def test_marginal_round_trip(self, three_level_marginal):
        clone = restore(payload_of(three_level_marginal))
        np.testing.assert_allclose(clone.rates, three_level_marginal.rates)
        np.testing.assert_allclose(clone.probs, three_level_marginal.probs)

    def test_source_round_trip(self, small_source):
        clone = restore(payload_of(small_source))
        assert clone.mean_rate == pytest.approx(small_source.mean_rate)
        assert clone.cutoff == small_source.cutoff
        assert clone.hurst == pytest.approx(small_source.hurst)

    def test_config_round_trip(self):
        config = SolverConfig(initial_bins=64, relative_gap=0.3, use_fft=False)
        assert restore(payload_of(config)) == config

    def test_none_config_normalizes_to_default(self):
        assert payload_of(None) == payload_of(SolverConfig())
        assert restore(payload_of(None)) == SolverConfig()

    def test_payloads_are_json_serializable(self, small_source):
        for obj in (small_source, small_source.marginal, small_source.interarrival, None):
            json.dumps(payload_of(obj))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="payload"):
            payload_of(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            restore({"kind": "mystery"})


class TestStableHash:
    def test_deterministic(self, small_source):
        assert stable_hash(payload_of(small_source)) == stable_hash(payload_of(small_source))

    def test_sensitive_to_content(self, small_source):
        a = stable_hash(payload_of(small_source))
        b = stable_hash(payload_of(small_source.with_cutoff(2.0)))
        assert a != b

    def test_independent_of_dict_ordering(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_version_participates(self):
        # The version is baked into the hashed material, so bumping
        # PAYLOAD_VERSION invalidates every stored key by construction.
        material = json.dumps(
            {"version": PAYLOAD_VERSION, "payload": {"kind": "x"}},
            sort_keys=True,
            separators=(",", ":"),
        )
        assert "version" in material

    def test_equal_marginals_built_differently_hash_identically(self):
        # Construction route must not matter, only the stored values.
        a = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
        b = DiscreteMarginal(
            rates=np.array([0.0, 2.0]), probs=np.array([0.5, 0.5])
        )
        assert stable_hash(payload_of(a)) == stable_hash(payload_of(b))


class TestSolverVersioning:
    """Kernel revisions must invalidate cached solves by key construction."""

    def test_config_payload_embeds_solver_version(self):
        payload = payload_of(SolverConfig())
        assert payload["solver_version"] == SOLVER_VERSION
        assert payload["fft_threshold_bins"] == DEFAULT_FFT_THRESHOLD_BINS

    def test_version_bump_changes_every_config_hash(self):
        current = payload_of(SolverConfig())
        previous = dict(current, solver_version=SOLVER_VERSION - 1)
        assert stable_hash(previous) != stable_hash(current)

    def test_v1_era_payload_hashes_differently(self):
        # Pre-spectral payloads carried neither key; entries stored under
        # those hashes must never alias solves from the current kernel.
        current = payload_of(SolverConfig())
        v1_era = {
            key: value
            for key, value in current.items()
            if key not in ("solver_version", "fft_threshold_bins")
        }
        assert stable_hash(v1_era) != stable_hash(current)

    def test_threshold_participates_in_hash(self):
        forced = stable_hash(payload_of(SolverConfig(fft_threshold_bins=0)))
        default = stable_hash(payload_of(SolverConfig()))
        assert forced != default

    def test_restore_tolerates_payload_without_threshold(self):
        payload = payload_of(SolverConfig())
        del payload["fft_threshold_bins"]
        assert restore(payload).fft_threshold_bins == DEFAULT_FFT_THRESHOLD_BINS


class TestPickleExactness:
    def test_pickle_preserves_probability_bits(self):
        import pickle

        # probs that do not renormalize to themselves exactly
        marginal = DiscreteMarginal(rates=[0.0, 1.0, 4.0], probs=[0.1, 0.2, 0.7])
        clone = pickle.loads(pickle.dumps(marginal))
        np.testing.assert_array_equal(clone.probs, marginal.probs)

    def test_pickle_preserves_source_bits(self, small_source):
        import pickle

        clone = pickle.loads(pickle.dumps(small_source))
        np.testing.assert_array_equal(clone.marginal.probs, small_source.marginal.probs)
        assert clone.interarrival == small_source.interarrival


def test_source_fingerprint_stable_via_pickle(small_source):
    """The cache-key contract: the same source hashes identically after
    crossing a (simulated) process boundary."""
    import pickle

    clone = pickle.loads(pickle.dumps(small_source))
    assert stable_hash(payload_of(clone)) == stable_hash(payload_of(small_source))
