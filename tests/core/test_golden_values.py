"""Golden regression values for the solver.

These pin the solver's output on three reference instances (computed with
``relative_gap=0.02`` and cross-validated against Monte Carlo in the
integration suite).  A failure here means a *numerical behavior change* —
deliberate algorithm improvements should update the constants, anything
else is a regression.
"""

from __future__ import annotations

import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.solver import FluidQueue, SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto

CONFIG = SolverConfig(relative_gap=0.02)

# (cutoff, service_rate, buffer) -> expected loss estimate.
GOLDEN = {
    (5.0, 1.25, 1.0): 1.292232e-01,
    (1.0, 1.25, 0.5): 1.309433e-01,
    (20.0, 1.4, 2.0): 6.369317e-02,
}


@pytest.mark.parametrize("params,expected", sorted(GOLDEN.items()))
def test_golden_loss_estimates(params, expected):
    cutoff, service_rate, buffer_size = params
    source = CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=cutoff),
    )
    result = FluidQueue(
        source=source, service_rate=service_rate, buffer_size=buffer_size
    ).loss_rate(CONFIG)
    assert result.converged
    # The 2 % gap config leaves ~1 % slack around the recorded midpoint.
    assert result.estimate == pytest.approx(expected, rel=0.02)


def test_golden_zero_buffer_closed_form():
    source = CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0),
    )
    result = FluidQueue(source=source, service_rate=1.25, buffer_size=0.0).loss_rate()
    assert result.estimate == pytest.approx(0.375, rel=1e-12)  # 0.5*0.75/1.0
