"""Tests for the result dataclasses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import LossRateResult, OccupancyBounds


class TestLossRateResult:
    def test_estimate_is_bound_average(self):
        result = LossRateResult(
            lower=0.1, upper=0.2, iterations=10, bins=64, converged=True, negligible=False
        )
        assert result.estimate == pytest.approx(0.15)
        assert result.gap == pytest.approx(0.1)
        assert result.relative_gap == pytest.approx(0.1 / 0.15)

    def test_negligible_reports_zero(self):
        result = LossRateResult(
            lower=0.0, upper=5e-11, iterations=10, bins=64, converged=True, negligible=True
        )
        assert result.estimate == 0.0

    def test_zero_bounds_relative_gap(self):
        result = LossRateResult(
            lower=0.0, upper=0.0, iterations=0, bins=0, converged=True, negligible=True
        )
        assert result.relative_gap == 0.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="dominate"):
            LossRateResult(
                lower=0.2, upper=0.1, iterations=1, bins=1, converged=True, negligible=False
            )

    def test_rejects_negative_lower(self):
        with pytest.raises(ValueError, match="non-negative"):
            LossRateResult(
                lower=-0.1, upper=0.1, iterations=1, bins=1, converged=True, negligible=False
            )

    def test_str_mentions_convergence(self):
        result = LossRateResult(
            lower=0.1, upper=0.2, iterations=10, bins=64, converged=False, negligible=False
        )
        assert "NOT converged" in str(result)


class TestOccupancyBounds:
    def test_cdf_and_means(self):
        grid = np.array([0.0, 0.5, 1.0])
        bounds = OccupancyBounds(
            grid=grid,
            lower_pmf=np.array([1.0, 0.0, 0.0]),
            upper_pmf=np.array([0.0, 0.0, 1.0]),
            iterations=5,
        )
        assert bounds.lower_mean == 0.0
        assert bounds.upper_mean == 1.0
        np.testing.assert_allclose(bounds.lower_cdf, [1.0, 1.0, 1.0])
        np.testing.assert_allclose(bounds.upper_cdf, [0.0, 0.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            OccupancyBounds(
                grid=np.array([0.0, 1.0]),
                lower_pmf=np.array([1.0]),
                upper_pmf=np.array([0.0, 1.0]),
                iterations=1,
            )

    def _bounds(self) -> OccupancyBounds:
        return OccupancyBounds(
            grid=np.array([0.0, 0.5, 1.0]),
            lower_pmf=np.array([0.5, 0.4, 0.1]),
            upper_pmf=np.array([0.2, 0.4, 0.4]),
            iterations=10,
        )

    def test_quantile_bracket_ordering(self):
        bounds = self._bounds()
        low, high = bounds.quantile(0.8)
        assert low <= high
        # lower chain cdf: [0.5, 0.9, 1.0] -> 0.8 quantile at 0.5
        assert low == 0.5
        # upper chain cdf: [0.2, 0.6, 1.0] -> 0.8 quantile at 1.0
        assert high == 1.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="level"):
            self._bounds().quantile(1.0)

    def test_reset_probabilities(self):
        bounds = self._bounds()
        assert bounds.full_probability == (0.1, 0.4)
        empty_low, empty_high = bounds.empty_probability
        assert empty_low == 0.2 and empty_high == 0.5
        assert empty_low <= empty_high
