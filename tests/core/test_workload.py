"""Tests for the workload-increment law W = T (lambda - c) and Eqs. 21-22."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.core.workload import DiscretizedWorkload, WorkloadLaw


@pytest.fixture
def workload(small_source) -> WorkloadLaw:
    return WorkloadLaw(source=small_source, service_rate=1.25)


class TestMomentsAndSupport:
    def test_mean_product_form(self, workload, small_source):
        expected = small_source.mean_interval * (small_source.mean_rate - 1.25)
        assert workload.mean == pytest.approx(expected)

    def test_mean_matches_monte_carlo(self, workload, rng):
        samples = workload.sample(300_000, rng)
        assert samples.mean() == pytest.approx(workload.mean, abs=0.01)

    def test_variance_matches_monte_carlo(self, workload, rng):
        samples = workload.sample(300_000, rng)
        assert samples.var() == pytest.approx(workload.variance, rel=0.05)

    def test_infinite_cutoff_infinite_moments(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        law = WorkloadLaw(source=source, service_rate=1.25)
        assert law.second_moment == math.inf
        assert law.variance == math.inf

    def test_support_bounds(self, workload, small_source):
        low, high = workload.support
        cutoff = small_source.cutoff
        assert low == pytest.approx(cutoff * (0.0 - 1.25))
        assert high == pytest.approx(cutoff * (2.0 - 1.25))

    def test_support_infinite_cutoff(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        low, high = WorkloadLaw(source=source, service_rate=1.0).support
        assert low == -math.inf
        assert high == math.inf

    def test_rejects_nonpositive_service_rate(self, small_source):
        with pytest.raises(ValueError, match="service_rate"):
            WorkloadLaw(source=small_source, service_rate=0.0)


class TestExactCdf:
    def test_cdf_limits(self, workload):
        low, high = workload.support
        assert workload.cdf(low - 1.0) == pytest.approx(0.0)
        assert workload.cdf(high + 1.0) == pytest.approx(1.0)

    def test_cdf_monotone(self, workload):
        w = np.linspace(-7.0, 4.0, 300)
        cdf = np.asarray(workload.cdf(w))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_cdf_vs_monte_carlo(self, workload, rng):
        samples = workload.sample(200_000, rng)
        for w in (-2.0, -0.5, 0.0, 0.3, 1.5, 3.0):
            empirical = float(np.mean(samples <= w))
            assert float(workload.cdf(w)) == pytest.approx(empirical, abs=0.005)

    def test_atoms_at_cutoff_increments(self, workload, small_source):
        # W has an atom at cutoff * (rate - c) for each rate level.
        cutoff = small_source.cutoff
        atom_mass = small_source.interarrival.atom_at_cutoff
        for rate, prob in zip(small_source.marginal.rates, small_source.marginal.probs):
            w = cutoff * (rate - 1.25)
            jump = float(workload.cdf(w)) - float(workload.cdf_left(w))
            assert jump == pytest.approx(prob * atom_mass, rel=1e-9)

    def test_rate_equal_to_service_is_an_atom_at_zero(self, pareto_law):
        marginal = DiscreteMarginal(rates=[0.0, 1.25, 2.0], probs=[0.4, 0.2, 0.4])
        source = CutoffFluidSource(marginal=marginal, interarrival=pareto_law)
        law = WorkloadLaw(source=source, service_rate=1.25)
        jump = float(law.cdf(0.0)) - float(law.cdf_left(0.0))
        assert jump == pytest.approx(0.2, rel=1e-9)

    @given(st.floats(min_value=-8.0, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_cdf_left_below_cdf(self, w):
        marginal = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
        source = CutoffFluidSource(
            marginal=marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)
        )
        law = WorkloadLaw(source=source, service_rate=1.25)
        assert float(law.cdf_left(w)) <= float(law.cdf(w)) + 1e-12


class TestDiscretization:
    def test_masses_sum_to_one(self, workload):
        w_lower, w_upper = workload.discretize(step=0.05, bins=64)
        assert w_lower.sum() == pytest.approx(1.0, abs=1e-9)
        assert w_upper.sum() == pytest.approx(1.0, abs=1e-9)

    def test_lengths(self, workload):
        w_lower, w_upper = workload.discretize(step=0.1, bins=32)
        assert w_lower.shape == (65,)
        assert w_upper.shape == (65,)

    def test_interior_masses_match_cdf_differences(self, workload):
        step, bins = 0.07, 40
        w_lower, w_upper = workload.discretize(step=step, bins=bins)
        j = bins + 3  # interior index, increment value 3 * step
        value = (j - bins) * step
        expected_lower = float(workload.cdf_left(value + step)) - float(
            workload.cdf_left(value)
        )
        expected_upper = float(workload.cdf(value)) - float(workload.cdf(value - step))
        assert w_lower[j] == pytest.approx(expected_lower, abs=1e-12)
        assert w_upper[j] == pytest.approx(expected_upper, abs=1e-12)

    def test_quantized_means_bracket_true_mean(self, workload):
        # floor-quantization underestimates W, ceil overestimates.
        step, bins = 0.02, 256
        w_lower, w_upper = workload.discretize(step=step, bins=bins)
        grid = (np.arange(2 * bins + 1) - bins) * step
        mean_lower = float(w_lower @ grid)
        mean_upper = float(w_upper @ grid)
        # Tail aggregation perturbs the raw means, but the ordering of the
        # quantization (up vs down) must hold.
        assert mean_lower <= mean_upper

    def test_stochastic_ordering_of_discretizations(self, workload):
        # ccdf of w_upper dominates ccdf of w_lower at every grid point.
        w_lower, w_upper = workload.discretize(step=0.05, bins=64)
        tail_lower = np.cumsum(w_lower[::-1])[::-1]
        tail_upper = np.cumsum(w_upper[::-1])[::-1]
        assert np.all(tail_upper >= tail_lower - 1e-9)

    def test_rejects_bad_arguments(self, workload):
        with pytest.raises(ValueError, match="step"):
            workload.discretize(step=0.0, bins=16)
        with pytest.raises(ValueError, match="bins"):
            workload.discretize(step=0.1, bins=0)

    def test_refinement_conserves_mass_locally(self, workload):
        # Halving the step: each coarse lower-bin mass equals the sum of the
        # two fine bins covering it (up to tail handling at the ends).
        step, bins = 0.1, 20
        coarse_lower, _ = workload.discretize(step=step, bins=bins)
        fine_lower, _ = workload.discretize(step=step / 2, bins=2 * bins)
        j = bins + 4  # coarse interior index
        fine_j = 2 * bins + 8  # same increment value on the fine grid
        combined = fine_lower[fine_j] + fine_lower[fine_j + 1]
        assert combined == pytest.approx(coarse_lower[j], abs=1e-12)


class TestDiscretizedWorkload:
    """The cached-cdf discretization object behind grid refinement."""

    def test_build_matches_discretize(self, workload):
        discretized = DiscretizedWorkload.build(workload, step=0.05, bins=64)
        w_lower, w_upper = workload.discretize(step=0.05, bins=64)
        np.testing.assert_array_equal(discretized.w_lower, w_lower)
        np.testing.assert_array_equal(discretized.w_upper, w_upper)
        assert discretized.bins == 64
        assert discretized.step == 0.05
        assert discretized.law is workload

    def test_refined_is_bit_identical_to_rebuild(self, workload):
        # Halving a float step is exact, so refined grid points coincide
        # bitwise with a from-scratch build at double resolution — the
        # midpoint-only cdf evaluation must therefore be lossless.
        coarse = DiscretizedWorkload.build(workload, step=0.1, bins=32)
        refined = coarse.refined()
        rebuilt = DiscretizedWorkload.build(workload, step=0.05, bins=64)
        assert refined.bins == rebuilt.bins
        assert refined.step == rebuilt.step
        np.testing.assert_array_equal(refined.lower_cdf, rebuilt.lower_cdf)
        np.testing.assert_array_equal(refined.upper_cdf, rebuilt.upper_cdf)
        np.testing.assert_array_equal(refined.w_lower, rebuilt.w_lower)
        np.testing.assert_array_equal(refined.w_upper, rebuilt.w_upper)

    def test_repeated_refinement_stays_exact(self, workload):
        discretized = DiscretizedWorkload.build(workload, step=0.2, bins=16)
        for _ in range(3):
            discretized = discretized.refined()
        rebuilt = DiscretizedWorkload.build(workload, step=0.025, bins=128)
        np.testing.assert_array_equal(discretized.w_lower, rebuilt.w_lower)
        np.testing.assert_array_equal(discretized.w_upper, rebuilt.w_upper)

    def test_refined_masses_stay_normalized(self, workload):
        refined = DiscretizedWorkload.build(workload, step=0.05, bins=64).refined()
        assert refined.w_lower.sum() == pytest.approx(1.0, abs=1e-9)
        assert refined.w_upper.sum() == pytest.approx(1.0, abs=1e-9)
