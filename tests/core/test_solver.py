"""Tests for the bounded convolution solver (Section II, Proposition II.1)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.solver import FluidQueue, SolverConfig, _BoundedChains, solve_loss_rate
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.core.workload import WorkloadLaw
from repro.queueing.fluid_sim import simulate_source_queue


@pytest.fixture
def queue(small_source) -> FluidQueue:
    return FluidQueue(source=small_source, service_rate=1.25, buffer_size=1.0)


class TestConstruction:
    def test_utilization_and_normalized_buffer(self, queue):
        assert queue.utilization == pytest.approx(1.0 / 1.25)
        assert queue.normalized_buffer == pytest.approx(1.0 / 1.25)

    def test_from_normalized(self, small_source):
        queue = FluidQueue.from_normalized(
            source=small_source, utilization=0.8, normalized_buffer=0.5
        )
        assert queue.service_rate == pytest.approx(small_source.mean_rate / 0.8)
        assert queue.buffer_size == pytest.approx(0.5 * queue.service_rate)

    def test_rejects_bad_parameters(self, small_source):
        with pytest.raises(ValueError, match="service_rate"):
            FluidQueue(source=small_source, service_rate=0.0, buffer_size=1.0)
        with pytest.raises(ValueError, match="buffer_size"):
            FluidQueue(source=small_source, service_rate=1.0, buffer_size=-1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="initial_bins"):
            SolverConfig(initial_bins=1)
        with pytest.raises(ValueError, match="max_bins"):
            SolverConfig(initial_bins=128, max_bins=64)
        with pytest.raises(ValueError, match="relative_gap"):
            SolverConfig(relative_gap=0.0)
        with pytest.raises(ValueError, match="max_iterations"):
            SolverConfig(block_iterations=100, max_iterations=50)


class TestTrivialCases:
    def test_zero_loss_when_peak_below_service(self, small_source):
        queue = FluidQueue(source=small_source, service_rate=2.5, buffer_size=1.0)
        result = queue.loss_rate()
        assert result.negligible
        assert result.estimate == 0.0
        assert result.iterations == 0

    def test_zero_buffer_exact(self, small_source):
        queue = FluidQueue(source=small_source, service_rate=1.25, buffer_size=0.0)
        result = queue.loss_rate()
        assert result.converged
        assert result.lower == result.upper
        assert result.estimate == pytest.approx(0.5 * 0.75 / 1.0)

    def test_overload_still_bounded(self, small_source):
        # Utilization > 1: heavy but well-defined loss.
        queue = FluidQueue(source=small_source, service_rate=0.8, buffer_size=0.5)
        result = queue.loss_rate()
        assert result.converged
        assert 0.0 < result.lower <= result.upper < 1.0
        # At utilization 1/0.8 the loss must at least absorb the mean excess.
        assert result.upper >= (1.0 - 0.8) / 1.0 * 0.9


class TestBoundsAndConvergence:
    def test_bounds_ordered_and_converged(self, queue):
        result = queue.loss_rate()
        assert result.converged
        assert 0.0 <= result.lower <= result.upper
        assert result.relative_gap <= 0.2 + 1e-9

    def test_monotone_in_iterations(self, small_source):
        """Proposition II.1: lower bound increasing, upper decreasing in n."""
        chains = _BoundedChains(
            workload=WorkloadLaw(source=small_source, service_rate=1.25),
            buffer_size=1.0,
            bins=64,
            use_fft=True,
        )
        previous_lower, previous_upper = chains.loss_bounds()
        for _ in range(6):
            chains.iterate(10)
            lower, upper = chains.loss_bounds()
            assert lower >= previous_lower - 1e-12
            assert upper <= previous_upper + 1e-12
            previous_lower, previous_upper = lower, upper

    def test_monotone_in_bins(self, small_source):
        """Proposition II.1: lower bound increasing, upper decreasing in M."""
        results = {}
        for bins in (32, 64, 128):
            chains = _BoundedChains(
                workload=WorkloadLaw(source=small_source, service_rate=1.25),
                buffer_size=1.0,
                bins=bins,
                use_fft=True,
            )
            chains.iterate(400)
            results[bins] = chains.loss_bounds()
        assert results[32][0] <= results[64][0] + 1e-10 <= results[128][0] + 2e-10
        assert results[32][1] >= results[64][1] - 1e-10 >= results[128][1] - 2e-10

    def test_refinement_carries_distribution(self, small_source):
        chains = _BoundedChains(
            workload=WorkloadLaw(source=small_source, service_rate=1.25),
            buffer_size=1.0,
            bins=32,
            use_fft=True,
        )
        chains.iterate(50)
        lower_before, upper_before = chains.loss_bounds()
        refined = chains.refined()
        assert refined.bins == 64
        assert refined.lower_pmf.sum() == pytest.approx(1.0)
        assert refined.upper_pmf.sum() == pytest.approx(1.0)
        lower_after, upper_after = refined.loss_bounds()
        # Same distributions evaluated on the same (finer) grid points.
        assert lower_after == pytest.approx(lower_before, rel=1e-9)
        assert upper_after == pytest.approx(upper_before, rel=1e-9)

    def test_refined_bounds_stay_ordered(self, small_source):
        """lower <= upper must survive refinement and further iteration."""
        chains = _BoundedChains(
            workload=WorkloadLaw(source=small_source, service_rate=1.25),
            buffer_size=1.0,
            bins=32,
            use_fft=True,
        )
        chains.iterate(50)
        for _ in range(3):
            chains = chains.refined()
            lower, upper = chains.loss_bounds()
            assert lower <= upper + 1e-15
            chains.iterate(20)
            lower, upper = chains.loss_bounds()
            assert lower <= upper + 1e-15

    def test_fft_and_direct_agree(self, small_source):
        kwargs = dict(
            workload=WorkloadLaw(source=small_source, service_rate=1.25),
            buffer_size=1.0,
            bins=128,
            fft_threshold_bins=0,  # force the spectral kernel despite bins < 256
        )
        fft_chains = _BoundedChains(use_fft=True, **kwargs)
        direct_chains = _BoundedChains(use_fft=False, **kwargs)
        fft_chains.iterate(60)
        direct_chains.iterate(60)
        for a, b in zip(fft_chains.loss_bounds(), direct_chains.loss_bounds()):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-13)

    def test_negligible_loss_reported_zero(self, small_source):
        # Tiny cutoff and large buffer: upper bound below 1e-10 -> zero.
        source = small_source.with_cutoff(0.05)
        queue = FluidQueue(source=source, service_rate=1.25, buffer_size=5.0)
        result = queue.loss_rate()
        assert result.negligible
        assert result.estimate == 0.0

    def test_solver_brackets_monte_carlo(self, small_source, rng):
        queue = FluidQueue(source=small_source, service_rate=1.25, buffer_size=1.0)
        result = queue.loss_rate(SolverConfig(relative_gap=0.1))
        sim = simulate_source_queue(
            small_source, 1.25, 1.0, intervals=300_000, rng=rng, warmup_intervals=2_000
        )
        slack = 0.05 * sim.loss_rate
        assert result.lower - slack <= sim.loss_rate <= result.upper + slack

    def test_loss_increases_with_cutoff(self, small_source):
        losses = []
        for cutoff in (0.5, 2.0, 8.0):
            result = solve_loss_rate(
                small_source.with_cutoff(cutoff), utilization=0.8, normalized_buffer=0.5
            )
            losses.append(result.estimate)
        assert losses[0] <= losses[1] <= losses[2]

    def test_loss_decreases_with_buffer(self, small_source):
        losses = []
        for buffer_seconds in (0.1, 0.5, 2.0):
            result = solve_loss_rate(
                small_source, utilization=0.8, normalized_buffer=buffer_seconds
            )
            losses.append(result.estimate)
        assert losses[0] >= losses[1] >= losses[2]

    def test_unconverged_flag_when_bins_capped(self, small_source):
        config = SolverConfig(
            initial_bins=4, max_bins=4, relative_gap=1e-4, max_iterations=2_000,
            block_iterations=50,
        )
        queue = FluidQueue(source=small_source, service_rate=1.25, buffer_size=1.0)
        result = queue.loss_rate(config)
        assert not result.converged
        assert result.bins == 4

    def test_multilevel_marginal(self, multi_source, rng):
        queue = FluidQueue(source=multi_source, service_rate=1.4, buffer_size=0.8)
        result = queue.loss_rate(SolverConfig(relative_gap=0.1))
        sim = simulate_source_queue(
            multi_source, 1.4, 0.8, intervals=300_000, rng=rng, warmup_intervals=2_000
        )
        assert result.converged
        slack = 0.05 * sim.loss_rate
        assert result.lower - slack <= sim.loss_rate <= result.upper + slack

    def test_rate_equal_to_service_is_handled(self, pareto_law, rng):
        marginal = DiscreteMarginal(rates=[0.0, 1.25, 2.0], probs=[0.4, 0.2, 0.4])
        source = CutoffFluidSource(marginal=marginal, interarrival=pareto_law)
        queue = FluidQueue(source=source, service_rate=1.25, buffer_size=0.6)
        result = queue.loss_rate(SolverConfig(relative_gap=0.1))
        sim = simulate_source_queue(
            source, 1.25, 0.6, intervals=200_000, rng=rng, warmup_intervals=2_000
        )
        assert result.converged
        slack = 0.07 * sim.loss_rate
        assert result.lower - slack <= sim.loss_rate <= result.upper + slack

    def test_infinite_cutoff_converges(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        result = solve_loss_rate(source, utilization=0.8, normalized_buffer=0.5)
        assert result.converged
        assert result.estimate > 0.0


class TestOccupancyBounds:
    def test_snapshots_shape_and_masses(self, queue):
        snapshots = queue.occupancy_bounds((5, 10, 30), bins=100)
        assert len(snapshots) == 3
        for snap in snapshots:
            assert snap.grid.shape == (101,)
            assert snap.lower_pmf.sum() == pytest.approx(1.0)
            assert snap.upper_pmf.sum() == pytest.approx(1.0)

    def test_means_converge_toward_each_other(self, queue):
        snapshots = queue.occupancy_bounds((5, 30, 120), bins=100)
        gaps = [s.upper_mean - s.lower_mean for s in snapshots]
        assert gaps[0] >= gaps[1] >= gaps[2] >= -1e-12

    def test_stochastic_ordering_of_bounds(self, queue):
        (snapshot,) = queue.occupancy_bounds((50,), bins=100)
        # Lower chain cdf dominates upper chain cdf pointwise.
        assert np.all(snapshot.lower_cdf >= snapshot.upper_cdf - 1e-9)

    def test_iteration_bookkeeping(self, queue):
        snapshots = queue.occupancy_bounds((5, 10), bins=50)
        assert [s.iterations for s in snapshots] == [5, 10]

    def test_rejects_bad_checkpoints(self, queue):
        with pytest.raises(ValueError, match="checkpoints"):
            queue.occupancy_bounds(())
