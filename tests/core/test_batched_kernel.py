"""Batched multi-task kernel (SOLVER_VERSION = 3): bit-identity and stats.

``batch_loss_rates`` advances same-shape solves through one stacked
``(tasks, 2, L)`` rfft/irfft pair per step.  Real FFTs along the last
axis transform rows independently, so the batched path promises — and
these tests enforce — *bit-for-bit* equality with one-at-a-time solves
across every exit path: gap convergence, negligible-loss exit, stall
plus refinement at divergent levels, and iteration-budget exhaustion.
"""

from __future__ import annotations

import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.solver import (
    FluidQueue,
    SolverConfig,
    _fft_stack_width,
    batch_loss_rates,
)
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto

SPECTRAL = SolverConfig(
    initial_bins=64, max_bins=512, relative_gap=0.1, max_iterations=20_000,
    use_fft=True, fft_threshold_bins=0,
)
DIRECT = SolverConfig(
    initial_bins=32, max_bins=128, relative_gap=0.5, max_iterations=2_000,
    use_fft=False,
)


def _source(cutoff: float = 5.0) -> CutoffFluidSource:
    return CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=cutoff),
    )


def _queues(buffers, utilization: float = 0.85) -> list[FluidQueue]:
    source = _source()
    return [
        FluidQueue.from_normalized(
            source=source, utilization=utilization, normalized_buffer=buffer
        )
        for buffer in buffers
    ]


def _assert_identical(batched, solo) -> None:
    assert len(batched) == len(solo)
    for from_batch, from_solo in zip(batched, solo):
        assert from_batch.lower == from_solo.lower  # bit-exact, not approx
        assert from_batch.upper == from_solo.upper
        assert from_batch.iterations == from_solo.iterations
        assert from_batch.bins == from_solo.bins
        assert from_batch.converged == from_solo.converged
        assert from_batch.negligible == from_solo.negligible


class TestBitIdentity:
    def test_homogeneous_spectral_batch_matches_solo(self):
        queues = _queues([0.1, 0.2, 0.4, 0.8, 1.2, 1.6])
        batched = batch_loss_rates(queues, config=SPECTRAL)
        solo = [queue.loss_rate(SPECTRAL) for queue in queues]
        _assert_identical(batched, solo)

    def test_divergent_exit_paths_stay_identical(self):
        # Wildly different buffers force different convergence iterations,
        # stalls and refinement levels across the batch; each member must
        # still retire exactly as it would alone.
        queues = _queues([0.02, 0.1, 0.5, 2.0, 5.0], utilization=0.95)
        config = SolverConfig(
            initial_bins=64, max_bins=1024, relative_gap=0.05,
            max_iterations=20_000, use_fft=True, fft_threshold_bins=0,
        )
        batched = batch_loss_rates(queues, config=config)
        solo = [queue.loss_rate(config) for queue in queues]
        _assert_identical(batched, solo)
        # The point of the fixture: members genuinely diverge.
        assert len({result.iterations for result in solo}) > 1

    def test_batch_with_trivial_member_matches_solo(self):
        source = _source()
        queues = _queues([0.1, 0.4])
        # Utilization <= peak-free regime: closed-form zero-loss result.
        queues.append(
            FluidQueue(source=source, service_rate=2.5, buffer_size=1.0)
        )
        batched = batch_loss_rates(queues, config=SPECTRAL)
        solo = [queue.loss_rate(SPECTRAL) for queue in queues]
        _assert_identical(batched, solo)
        assert batched[-1].stats is None  # trivial members skip the kernel

    def test_direct_path_batch_matches_solo(self):
        queues = _queues([0.1, 0.3, 0.6])
        batched = batch_loss_rates(queues, config=DIRECT)
        solo = [queue.loss_rate(DIRECT) for queue in queues]
        _assert_identical(batched, solo)

    def test_iteration_exhaustion_matches_solo(self):
        starved = SolverConfig(
            initial_bins=64, max_bins=128, relative_gap=1e-12,
            negligible_loss=0.0, max_iterations=48, block_iterations=16,
            use_fft=True, fft_threshold_bins=0,
        )
        queues = _queues([0.1, 0.2, 0.4])
        batched = batch_loss_rates(queues, config=starved)
        solo = [queue.loss_rate(starved) for queue in queues]
        _assert_identical(batched, solo)
        assert not any(result.converged for result in batched)


class TestBatchSemantics:
    def test_empty_batch(self):
        assert batch_loss_rates([], config=SPECTRAL) == []

    def test_batch_of_one_matches_solo_and_runs_solo_width(self):
        (queue,) = _queues([0.3])
        (batched,) = batch_loss_rates([queue], config=SPECTRAL)
        solo = queue.loss_rate(SPECTRAL)
        assert batched == solo
        assert batched.stats is not None

    def test_stacked_members_record_their_batch_width(self):
        queues = _queues([0.1, 0.2, 0.4, 0.8])
        batched = batch_loss_rates(queues, config=SPECTRAL)
        for result in batched:
            assert result.stats is not None
            assert result.stats.batch_width > 1
        solo = queues[0].loss_rate(SPECTRAL)
        assert solo.stats is not None
        assert solo.stats.batch_width == 1

    def test_counters_match_the_solo_equivalents(self):
        # The batched path reports solo-equivalent work per member: the
        # same transform count a lone solve of that member performs.
        queues = _queues([0.1, 0.2, 0.4])
        batched = batch_loss_rates(queues, config=SPECTRAL)
        solo = [queue.loss_rate(SPECTRAL) for queue in queues]
        for from_batch, from_solo in zip(batched, solo):
            assert from_batch.stats.transforms == from_solo.stats.transforms
            assert from_batch.stats.total_steps == from_solo.stats.total_steps
            assert (
                from_batch.stats.steps_per_level == from_solo.stats.steps_per_level
            )


class TestStackWidthPolicy:
    def test_width_shrinks_as_bins_grow(self):
        assert _fft_stack_width(64) >= _fft_stack_width(256)
        assert _fft_stack_width(256) >= _fft_stack_width(1024)

    def test_width_never_drops_below_minimum(self):
        assert _fft_stack_width(1 << 20) == 4

    @pytest.mark.parametrize("bins", [64, 256, 1024])
    def test_width_is_positive(self, bins):
        assert _fft_stack_width(bins) >= 1
