"""Tests for the closed-form expected overflow E[W_l | Q = x] (Eqs. 13-15)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.loss import (
    expected_overflow,
    loss_rate_from_occupancy,
    zero_buffer_loss_rate,
)
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto


def _monte_carlo_overflow(source, service_rate, buffer_size, occupancy, rng, n=400_000):
    durations = source.interarrival.sample(n, rng)
    rates = source.marginal.sample(n, rng)
    w = durations * (rates - service_rate)
    return float(np.maximum(w - (buffer_size - occupancy), 0.0).mean())


class TestExpectedOverflow:
    def test_matches_monte_carlo(self, small_source, rng):
        for occupancy in (0.0, 0.4, 0.8):
            analytic = float(
                expected_overflow(
                    small_source, service_rate=1.25, buffer_size=1.0, occupancy=occupancy
                )
            )
            empirical = _monte_carlo_overflow(small_source, 1.25, 1.0, occupancy, rng)
            assert analytic == pytest.approx(empirical, rel=0.05)

    def test_matches_monte_carlo_infinite_cutoff(self, onoff_marginal, rng):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        analytic = float(
            expected_overflow(source, service_rate=1.25, buffer_size=0.5, occupancy=0.25)
        )
        empirical = _monte_carlo_overflow(source, 1.25, 0.5, 0.25, rng)
        assert analytic == pytest.approx(empirical, rel=0.05)

    def test_increasing_in_occupancy(self, small_source):
        x = np.linspace(0.0, 1.0, 50)
        values = np.asarray(
            expected_overflow(small_source, service_rate=1.25, buffer_size=1.0, occupancy=x)
        )
        assert np.all(np.diff(values) >= -1e-15)

    def test_zero_when_no_up_states(self, small_source):
        # Service faster than the peak rate: nothing can overflow.
        value = expected_overflow(small_source, service_rate=3.0, buffer_size=1.0, occupancy=0.5)
        assert float(value) == 0.0

    def test_full_buffer_occupancy_consistency(self, small_source):
        # At x = B the loss per interval is E[W^+].
        value = float(
            expected_overflow(small_source, service_rate=1.25, buffer_size=1.0, occupancy=1.0)
        )
        law = small_source.interarrival
        # E[(T (2 - 1.25))^+] = 0.75 E[T] * pi_high
        expected = 0.5 * 0.75 * law.mean
        assert value == pytest.approx(expected, rel=1e-9)

    def test_feasibility_condition_excludes_states(self, small_source):
        # If even a maximal interval cannot overflow the headroom, the
        # expected overflow is exactly zero.
        cutoff = small_source.cutoff
        big_buffer = cutoff * (2.0 - 1.25) + 1.0
        value = expected_overflow(
            small_source, service_rate=1.25, buffer_size=big_buffer, occupancy=0.0
        )
        assert float(value) == 0.0

    def test_rejects_occupancy_outside_buffer(self, small_source):
        with pytest.raises(ValueError, match="occupancy"):
            expected_overflow(small_source, service_rate=1.25, buffer_size=1.0, occupancy=1.5)

    def test_vector_occupancy_shape(self, small_source):
        x = np.linspace(0.0, 1.0, 7)
        values = expected_overflow(small_source, service_rate=1.25, buffer_size=1.0, occupancy=x)
        assert np.asarray(values).shape == (7,)


class TestLossRateAssembly:
    def test_loss_rate_from_degenerate_occupancy(self, small_source):
        # All mass at the full buffer: loss = E[W^+] / (mean_rate E[T]).
        grid = np.array([0.0, 1.0])
        pmf = np.array([0.0, 1.0])
        loss = loss_rate_from_occupancy(small_source, 1.25, 1.0, pmf, grid)
        per_interval = float(
            expected_overflow(small_source, service_rate=1.25, buffer_size=1.0, occupancy=1.0)
        )
        expected = per_interval / (small_source.mean_rate * small_source.mean_interval)
        assert loss == pytest.approx(expected)

    def test_mismatched_shapes_rejected(self, small_source):
        with pytest.raises(ValueError, match="shape"):
            loss_rate_from_occupancy(
                small_source, 1.25, 1.0, np.array([1.0]), np.array([0.0, 1.0])
            )

    def test_zero_buffer_closed_form(self, small_source):
        # l = E[(lambda - c)^+] / mean_rate.
        loss = zero_buffer_loss_rate(small_source, service_rate=1.25)
        assert loss == pytest.approx(0.5 * 0.75 / 1.0)

    def test_zero_buffer_equals_overflow_formula(self, multi_source):
        c = 1.3
        via_overflow = float(
            expected_overflow(multi_source, service_rate=c, buffer_size=0.0, occupancy=0.0)
        ) / (multi_source.mean_rate * multi_source.mean_interval)
        assert zero_buffer_loss_rate(multi_source, c) == pytest.approx(via_overflow, rel=1e-9)

    def test_zero_buffer_zero_when_service_dominates(self, small_source):
        assert zero_buffer_loss_rate(small_source, service_rate=2.5) == 0.0
