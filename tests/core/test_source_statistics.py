"""Deeper statistical identities of the cutoff fluid source."""

from __future__ import annotations

import math

import pytest
from scipy import integrate

from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto


class TestCumulativeArrivalVariance:
    def test_matches_double_integral(self, small_source):
        t = 2.5
        numeric, _ = integrate.quad(
            lambda s: (t - s) * float(small_source.autocovariance(s)), 0.0, t, limit=200
        )
        assert small_source.cumulative_arrival_variance(t) == pytest.approx(
            2.0 * numeric, rel=1e-3
        )

    def test_linear_growth_beyond_cutoff(self, small_source):
        """For t >> T_c the increments decorrelate: Var[A(t)] grows linearly."""
        cutoff = small_source.cutoff
        v1 = small_source.cumulative_arrival_variance(10.0 * cutoff)
        v2 = small_source.cumulative_arrival_variance(20.0 * cutoff)
        # Var[A(t)] = 2 int (t-s) phi(s) ds ~ 2 t int phi for t >> T_c.
        assert v2 / v1 == pytest.approx(2.0, rel=0.1)

    def test_superlinear_growth_inside_correlation(self, onoff_marginal):
        """Inside the LRD range Var[A(t)] grows like t^{2H}."""
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.01, alpha=1.4)
        )
        t1, t2 = 10.0, 40.0
        v1 = source.cumulative_arrival_variance(t1)
        v2 = source.cumulative_arrival_variance(t2)
        exponent = math.log(v2 / v1) / math.log(t2 / t1)
        assert exponent == pytest.approx(2.0 * source.hurst, abs=0.12)

    def test_rejects_bad_horizon(self, small_source):
        with pytest.raises(ValueError, match="horizon"):
            small_source.cumulative_arrival_variance(0.0)


class TestMonteCarloMoments:
    def test_binned_trace_variance_below_rate_variance(self, small_source, rng):
        # Binned averages smooth the process: per-bin variance <= sigma^2,
        # approaching sigma^2 as bins shrink below the epoch scale.
        fine = small_source.rate_trace(duration=500.0, bin_width=0.01, rng=rng)
        coarse = small_source.rate_trace(duration=500.0, bin_width=2.0, rng=rng)
        assert fine.var() <= small_source.rate_variance * 1.1
        assert coarse.var() < fine.var()

    def test_trace_mean_consistency_across_binning(self, small_source, rng):
        trace = small_source.rate_trace(duration=1000.0, bin_width=0.1, rng=rng)
        assert trace.mean() == pytest.approx(small_source.mean_rate, rel=0.1)

    def test_interval_work_identity(self, small_source, rng):
        path = small_source.sample_path(50_000, rng)
        # E[work per interval] = E[T] E[lambda] (independence).
        expected = small_source.mean_interval * small_source.mean_rate
        assert path.total_work / path.durations.size == pytest.approx(expected, rel=0.05)


class TestHurstMappingConsistency:
    @pytest.mark.parametrize("hurst", [0.55, 0.7, 0.9])
    def test_covariance_tail_exponent(self, onoff_marginal, hurst):
        source = CutoffFluidSource.from_hurst(
            marginal=onoff_marginal, hurst=hurst, mean_interval=0.01
        )
        # phi(t) ~ t^{-(2 - 2H)} in the far tail.
        t = 500.0
        ratio = source.autocovariance(4.0 * t) / source.autocovariance(t)
        assert ratio == pytest.approx(4.0 ** -(2.0 - 2.0 * hurst), rel=0.02)

    def test_round_trip_through_interarrival(self, onoff_marginal):
        for hurst in (0.6, 0.75, 0.95):
            source = CutoffFluidSource.from_hurst(
                marginal=onoff_marginal, hurst=hurst, mean_interval=0.05
            )
            assert source.hurst == pytest.approx(hurst)
            assert source.interarrival.alpha == pytest.approx(3.0 - 2.0 * hurst)
