"""Property-based invariants of the canonical fingerprint encoding.

The solve cache keys on :func:`repro.core.fingerprint.stable_hash`, so two
properties are load-bearing:

* the hash must not depend on payload dict insertion order (it is a
  content hash, not a structural one), and
* changing *any* dataclass field value must change the hash, otherwise
  distinct work units alias the same cache entry (the failure mode the
  FPR001 lint rule guards against statically).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given
from hypothesis import strategies as st

from repro.core.fingerprint import payload_of, stable_hash
from repro.core.solver import SolverConfig
from repro.core.truncated_pareto import TruncatedPareto


@st.composite
def solver_configs(draw) -> SolverConfig:
    # Lower bounds of 3/2 leave room to decrement a field in the mutation
    # test without tripping ``__post_init__`` validation.
    initial_bins = draw(st.integers(min_value=3, max_value=512))
    block_iterations = draw(st.integers(min_value=2, max_value=64))
    return SolverConfig(
        initial_bins=initial_bins,
        max_bins=initial_bins * draw(st.integers(min_value=1, max_value=64)),
        relative_gap=draw(st.floats(min_value=1e-3, max_value=0.9)),
        negligible_loss=draw(st.floats(min_value=0.0, max_value=1e-6)),
        block_iterations=block_iterations,
        max_iterations=block_iterations * draw(st.integers(min_value=1, max_value=1000)),
        stall_relative_change=draw(st.floats(min_value=1e-8, max_value=1e-2)),
        use_fft=draw(st.booleans()),
        fft_threshold_bins=draw(st.integers(min_value=0, max_value=4096)),
    )


@st.composite
def pareto_laws(draw) -> TruncatedPareto:
    return TruncatedPareto(
        theta=draw(st.floats(min_value=1e-3, max_value=100.0)),
        alpha=draw(st.floats(min_value=1.001, max_value=1.999)),
        cutoff=draw(st.floats(min_value=0.5, max_value=1e6)),
    )


def _reordered(payload: dict, reverse: bool) -> dict:
    items = list(payload.items())
    if reverse:
        items.reverse()
    else:
        items = items[1:] + items[:1]
    return dict(items)


@given(config=solver_configs(), reverse=st.booleans())
def test_hash_ignores_payload_field_order(config: SolverConfig, reverse: bool):
    payload = payload_of(config)
    assert stable_hash(_reordered(payload, reverse)) == stable_hash(payload)


@given(law=pareto_laws(), reverse=st.booleans())
def test_pareto_hash_ignores_payload_field_order(law: TruncatedPareto, reverse: bool):
    payload = payload_of(law)
    assert stable_hash(_reordered(payload, reverse)) == stable_hash(payload)


@given(config=solver_configs())
def test_every_config_field_change_changes_the_hash(config: SolverConfig):
    base = stable_hash(payload_of(config))
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name == "use_fft":
            bumped = not value
        elif field.name in ("max_bins", "max_iterations", "fft_threshold_bins"):
            bumped = value + 1  # growing these never violates validation
        elif isinstance(value, int):
            bumped = value - 1  # lower strategy bounds keep this valid
        else:
            bumped = value * 0.5 + 1e-9
        mutated = dataclasses.replace(config, **{field.name: bumped})
        assert stable_hash(payload_of(mutated)) != base, (
            f"changing SolverConfig.{field.name} did not change the cache key"
        )


@given(law=pareto_laws())
def test_every_pareto_field_change_changes_the_hash(law: TruncatedPareto):
    base = stable_hash(payload_of(law))
    for field in dataclasses.fields(law):
        value = getattr(law, field.name)
        bumped = 1.0 + value / 2.0 if field.name == "alpha" else value * 0.5 + 1e-6
        mutated = dataclasses.replace(law, **{field.name: bumped})
        assert stable_hash(payload_of(mutated)) != base, (
            f"changing TruncatedPareto.{field.name} did not change the cache key"
        )


@given(config=solver_configs())
def test_hash_is_deterministic_across_equal_instances(config: SolverConfig):
    clone = dataclasses.replace(config)
    assert stable_hash(payload_of(clone)) == stable_hash(payload_of(config))
