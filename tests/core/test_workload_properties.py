"""Property-based tests for the workload law over random model instances."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.core.workload import WorkloadLaw


@st.composite
def workload_laws(draw) -> WorkloadLaw:
    n_levels = draw(st.integers(min_value=1, max_value=6))
    increments = [draw(st.floats(min_value=0.1, max_value=3.0)) for _ in range(n_levels)]
    rates = np.concatenate([[0.0], np.cumsum(increments)])[:n_levels]
    weights = np.array(
        [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(n_levels)]
    )
    marginal = DiscreteMarginal(rates=rates, probs=weights / weights.sum())
    law = TruncatedPareto(
        theta=draw(st.floats(min_value=0.01, max_value=1.0)),
        alpha=draw(st.floats(min_value=1.05, max_value=1.95)),
        cutoff=draw(
            st.one_of(st.floats(min_value=0.2, max_value=50.0), st.just(math.inf))
        ),
    )
    service_rate = draw(st.floats(min_value=0.1, max_value=5.0))
    return WorkloadLaw(
        source=CutoffFluidSource(marginal=marginal, interarrival=law),
        service_rate=service_rate,
    )


class TestWorkloadCdfProperties:
    @given(workload_laws(), st.floats(min_value=-20.0, max_value=20.0))
    @settings(max_examples=80, deadline=None)
    def test_cdf_bounds_and_ordering(self, law, w):
        left = float(law.cdf_left(w))
        right = float(law.cdf(w))
        assert 0.0 <= left <= right <= 1.0 + 1e-12

    @given(workload_laws())
    @settings(max_examples=40, deadline=None)
    def test_cdf_monotone(self, law):
        w = np.linspace(-15.0, 15.0, 101)
        cdf = np.asarray(law.cdf(w))
        assert np.all(np.diff(cdf) >= -1e-12)

    @given(workload_laws())
    @settings(max_examples=40, deadline=None)
    def test_support_endpoints(self, law):
        # The law has atoms exactly at the support endpoints (the cutoff
        # atom scaled by each drift), so evaluate strictly outside; a
        # relative nudge dodges the float round-trip through w/drift.
        low, high = law.support
        if low != -math.inf:
            outside = low - max(1e-9, 1e-9 * abs(low))
            assert float(law.cdf_left(outside)) == pytest.approx(0.0, abs=1e-12)
        if high != math.inf:
            outside = high + max(1e-9, 1e-9 * abs(high))
            assert float(law.cdf(outside)) == pytest.approx(1.0, abs=1e-12)

    @given(workload_laws())
    @settings(max_examples=30, deadline=None)
    def test_discretized_masses_sum_to_one(self, law):
        w_lower, w_upper = law.discretize(step=0.13, bins=24)
        assert w_lower.sum() == pytest.approx(1.0, abs=1e-9)
        assert w_upper.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(w_lower >= 0.0)
        assert np.all(w_upper >= 0.0)

    @given(workload_laws())
    @settings(max_examples=30, deadline=None)
    def test_upper_stochastically_dominates_lower(self, law):
        w_lower, w_upper = law.discretize(step=0.21, bins=16)
        tail_lower = np.cumsum(w_lower[::-1])[::-1]
        tail_upper = np.cumsum(w_upper[::-1])[::-1]
        assert np.all(tail_upper >= tail_lower - 1e-9)

    @given(workload_laws())
    @settings(max_examples=25, deadline=None)
    def test_mean_sign_matches_utilization(self, law):
        mean = law.mean
        offered = law.source.mean_rate
        if offered < law.service_rate:
            assert mean <= 1e-12
        elif offered > law.service_rate:
            assert mean >= -1e-12
