"""Tests for the correlation-horizon estimators (Eq. 26 and friends)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.special import erfinv

from repro.core.horizon import (
    correlation_horizon,
    correlation_horizon_clt,
    empirical_horizon,
    norros_horizon,
)
from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto


class TestEq26:
    def test_matches_formula_for_finite_cutoff(self, small_source):
        buffer_size = 2.0
        p = 0.05
        law = small_source.interarrival
        expected = (
            buffer_size
            * law.mean
            / (2.0 * math.sqrt(2.0) * law.std * small_source.marginal.std * erfinv(p))
        )
        assert correlation_horizon(small_source, buffer_size, p) == pytest.approx(expected)

    def test_linear_in_buffer(self, small_source):
        h1 = correlation_horizon(small_source, 1.0)
        h2 = correlation_horizon(small_source, 2.0)
        assert h2 == pytest.approx(2.0 * h1)

    def test_smaller_p_longer_horizon(self, small_source):
        strict = correlation_horizon(small_source, 1.0, no_reset_probability=0.01)
        loose = correlation_horizon(small_source, 1.0, no_reset_probability=0.5)
        assert strict > loose

    def test_infinite_cutoff_self_consistent(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        horizon = correlation_horizon(source, buffer_size=1.0)
        assert horizon > 0.0
        # Fixed point: recomputing with the law truncated at the horizon
        # reproduces the horizon.
        law = source.interarrival.with_cutoff(horizon)
        expected = (
            1.0 * law.mean
            / (2.0 * math.sqrt(2.0) * law.std * source.marginal.std * erfinv(0.05))
        )
        assert horizon == pytest.approx(expected, rel=1e-6)

    def test_degenerate_marginal_rejected(self, pareto_law):
        source = CutoffFluidSource(
            marginal=DiscreteMarginal(rates=[1.0], probs=[1.0]), interarrival=pareto_law
        )
        with pytest.raises(ValueError, match="degenerate"):
            correlation_horizon(source, 1.0)

    def test_rejects_bad_probability(self, small_source):
        with pytest.raises(ValueError, match="no_reset_probability"):
            correlation_horizon(small_source, 1.0, no_reset_probability=1.0)


class TestCltVariant:
    def test_quadratic_in_buffer(self, small_source):
        h1 = correlation_horizon_clt(small_source, 1.0)
        h2 = correlation_horizon_clt(small_source, 2.0)
        assert h2 == pytest.approx(4.0 * h1)

    def test_requires_finite_cutoff(self, onoff_marginal):
        source = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4)
        )
        with pytest.raises(ValueError, match="finite"):
            correlation_horizon_clt(source, 1.0)


class TestNorros:
    def test_formula(self, small_source):
        value = norros_horizon(small_source, service_rate=1.25, buffer_size=1.0)
        hurst = small_source.hurst
        expected = (1.0 / 0.25) * hurst / (1.0 - hurst)
        assert value == pytest.approx(expected)

    def test_linear_in_buffer(self, small_source):
        h1 = norros_horizon(small_source, 1.25, 1.0)
        h2 = norros_horizon(small_source, 1.25, 3.0)
        assert h2 == pytest.approx(3.0 * h1)

    def test_requires_stability(self, small_source):
        with pytest.raises(ValueError, match="utilization"):
            norros_horizon(small_source, service_rate=1.0, buffer_size=1.0)


class TestEmpiricalHorizon:
    def test_plateau_detection(self):
        cutoffs = np.array([0.1, 1.0, 10.0, 100.0, 1000.0])
        losses = np.array([1e-6, 1e-4, 9.0e-4, 9.6e-4, 1.0e-3])
        horizon = empirical_horizon(cutoffs, losses, relative_band=0.25)
        assert horizon == 10.0

    def test_immediate_plateau(self):
        cutoffs = np.array([1.0, 2.0, 4.0])
        losses = np.array([1e-3, 1.05e-3, 1e-3])
        assert empirical_horizon(cutoffs, losses) == 1.0

    def test_no_plateau_until_last(self):
        cutoffs = np.array([1.0, 2.0, 4.0, 8.0])
        losses = np.array([1e-6, 1e-5, 1e-4, 1e-3])
        assert empirical_horizon(cutoffs, losses) == 8.0

    def test_all_zero_losses(self):
        cutoffs = np.array([1.0, 2.0, 4.0])
        losses = np.zeros(3)
        assert empirical_horizon(cutoffs, losses) == 1.0

    def test_zero_plateau_after_positive(self):
        cutoffs = np.array([1.0, 2.0, 4.0, 8.0])
        losses = np.array([1e-4, 1e-5, 0.0, 0.0])
        horizon = empirical_horizon(cutoffs, losses)
        assert horizon == 4.0

    def test_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            empirical_horizon(np.array([2.0, 1.0]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError, match="equal length"):
            empirical_horizon(np.array([1.0, 2.0]), np.array([0.1]))
        with pytest.raises(ValueError, match="non-negative"):
            empirical_horizon(np.array([1.0, 2.0]), np.array([-0.1, 0.2]))
