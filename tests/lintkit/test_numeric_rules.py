"""NUM001-NUM004 fixtures: minimal violating and clean snippets."""

from __future__ import annotations


def test_float_literal_equality_fires(lint_tree):
    findings = lint_tree(
        {"repro/mod.py": "def f(x):\n    return x == 0.2 or x != 1.5\n"},
        select=["NUM001"],
    )
    assert [f.rule for f in findings] == ["NUM001", "NUM001"]
    assert "0.2" in findings[0].message


def test_nan_equality_fires(lint_tree):
    findings = lint_tree(
        {"repro/mod.py": "import math\n\ndef f(x):\n    return x == math.nan\n"},
        select=["NUM001"],
    )
    assert [f.rule for f in findings] == ["NUM001"]
    assert "NaN" in findings[0].message


def test_exact_sentinels_are_allowed(lint_tree):
    assert (
        lint_tree(
            {
                "repro/mod.py": """\
                import math

                def f(x, cutoff):
                    if x == 0.0 or x == -0.0:
                        return 0
                    if cutoff == math.inf:
                        return 1
                    return x < 0.2 and x >= 1.5  # ordering comparisons are fine
                """
            },
            select=["NUM001"],
        )
        == []
    )


def test_global_numpy_rng_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/traffic/gen.py": """\
            import numpy as np

            def noise(n):
                np.random.seed(42)
                return np.random.standard_normal(n)
            """
        },
        select=["NUM002"],
    )
    assert [f.rule for f in findings] == ["NUM002", "NUM002"]
    assert "np.random.seed" in findings[0].message


def test_explicit_generator_is_clean(lint_tree):
    assert (
        lint_tree(
            {
                "repro/traffic/gen.py": """\
                import numpy as np

                def noise(n, rng: np.random.Generator | None = None):
                    rng = rng if rng is not None else np.random.default_rng(7)
                    return rng.standard_normal(n)
                """
            },
            select=["NUM002"],
        )
        == []
    )


def test_wall_clock_read_fires(lint_tree):
    findings = lint_tree(
        {"repro/core/hot.py": "import time\n\ndef stamp():\n    return time.time()\n"},
        select=["NUM003"],
    )
    assert [f.rule for f in findings] == ["NUM003"]
    assert "perf_counter" in findings[0].message


def test_monotonic_clocks_are_clean(lint_tree):
    assert (
        lint_tree(
            {
                "repro/core/hot.py": """\
                import time

                def span():
                    start = time.perf_counter()
                    deadline = time.monotonic() + 5.0
                    return start, deadline
                """
            },
            select=["NUM003"],
        )
        == []
    )


def test_dtype_downcast_in_core_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/core/grid.py": """\
            import numpy as np

            def shrink(a):
                b = a.astype(np.float32)
                c = np.zeros(4, dtype="int16")
                return b, c
            """
        },
        select=["NUM004"],
    )
    assert [f.rule for f in findings] == ["NUM004", "NUM004"]
    assert "float32" in findings[0].message
    assert "int16" in findings[1].message


def test_dtype_downcast_outside_core_is_out_of_scope(lint_tree):
    # Display/reporting layers may narrow; only repro.core is fenced.
    assert (
        lint_tree(
            {
                "repro/experiments/plot.py": """\
                import numpy as np

                def shrink(a):
                    return a.astype(np.float32)
                """
            },
            select=["NUM004"],
        )
        == []
    )


def test_float64_in_core_is_clean(lint_tree):
    assert (
        lint_tree(
            {
                "repro/core/grid.py": """\
                import numpy as np

                def widen(a):
                    b = np.asarray(a, dtype=np.float64)
                    return b.astype(np.float64)
                """
            },
            select=["NUM004"],
        )
        == []
    )
