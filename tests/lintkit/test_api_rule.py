"""API001: ``__all__`` exports must appear in the generated API reference."""

from __future__ import annotations

MODULE = """\
\"\"\"A documented module.\"\"\"

__all__ = ["solve_fast", "SolveKnobs"]


def solve_fast():
    \"\"\"Solve, but fast.\"\"\"


class SolveKnobs:
    \"\"\"Knobs.\"\"\"
"""


def test_missing_symbol_fires(lint_tree, tmp_path):
    doc = tmp_path / "docs" / "api.md"
    doc.parent.mkdir(parents=True)
    doc.write_text("# API reference\n\n### `solve_fast()`\n", encoding="utf-8")
    findings = lint_tree({"repro/fastpath.py": MODULE}, select=["API"], api_doc=doc)
    assert [f.rule for f in findings] == ["API001"]
    assert "repro.fastpath.SolveKnobs" in findings[0].message


def test_documented_symbols_are_clean(lint_tree, tmp_path):
    doc = tmp_path / "docs" / "api.md"
    doc.parent.mkdir(parents=True)
    doc.write_text(
        "# API reference\n\n### `solve_fast()`\n\n### `SolveKnobs`\n", encoding="utf-8"
    )
    assert lint_tree({"repro/fastpath.py": MODULE}, select=["API"], api_doc=doc) == []


def test_reexport_listing_counts_as_documented(lint_tree, tmp_path):
    doc = tmp_path / "docs" / "api.md"
    doc.parent.mkdir(parents=True)
    doc.write_text(
        "## `repro.fastpath`\n\nRe-exports: `solve_fast`, `SolveKnobs`\n",
        encoding="utf-8",
    )
    assert lint_tree({"repro/fastpath.py": MODULE}, select=["API"], api_doc=doc) == []


def test_missing_document_skips_quietly(lint_tree, tmp_path):
    missing = tmp_path / "docs" / "api.md"  # never created
    assert lint_tree({"repro/fastpath.py": MODULE}, select=["API"], api_doc=missing) == []


def test_private_modules_and_underscore_exports_are_exempt(lint_tree, tmp_path):
    doc = tmp_path / "docs" / "api.md"
    doc.parent.mkdir(parents=True)
    doc.write_text("# API reference\n", encoding="utf-8")
    assert (
        lint_tree(
            {
                "repro/traffic/_private.py": '__all__ = ["helper"]\n\n\ndef helper():\n    pass\n',
                "repro/traffic/pub.py": '__all__ = ["_internal"]\n\n\ndef _internal():\n    pass\n',
            },
            select=["API"],
            api_doc=doc,
        )
        == []
    )
