"""FPR001: dataclass fields must be covered by the hashed payload keys."""

from __future__ import annotations

from pathlib import Path

COMPLETE = {
    "repro/core/things.py": """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Knobs:
        alpha: float
        beta: int = 3
    """,
    "repro/core/fingerprint.py": """\
    from repro.core.things import Knobs

    def payload_of(obj):
        if isinstance(obj, Knobs):
            return {"kind": "knobs", "alpha": obj.alpha, "beta": obj.beta}
        raise TypeError
    """,
}


def test_complete_payload_is_clean(lint_tree):
    assert lint_tree(COMPLETE, select=["FPR"]) == []


def test_missing_field_in_payload_of_branch_fires(lint_tree):
    files = dict(COMPLETE)
    # The literal ends on a 4-space line before its closing quotes, so the
    # appended text needs only 4 more spaces to land inside the class body.
    files["repro/core/things.py"] += "    gamma: float = 0.5\n"
    findings = lint_tree(files, select=["FPR"])
    assert [f.rule for f in findings] == ["FPR001"]
    assert "Knobs" in findings[0].message
    assert "'gamma'" in findings[0].message
    assert findings[0].path.endswith("fingerprint.py")


def test_or_guard_branch_shape_is_recognized(lint_tree):
    # The real encoder normalizes None to the default config in one branch.
    findings = lint_tree(
        {
            "repro/core/things.py": COMPLETE["repro/core/things.py"]
            + "    gamma: int = 0\n",
            "repro/core/fingerprint.py": """\
            from repro.core.things import Knobs

            def payload_of(obj):
                if obj is None or isinstance(obj, Knobs):
                    obj = obj or Knobs(alpha=1.0)
                    return {"kind": "knobs", "alpha": obj.alpha, "beta": obj.beta}
                raise TypeError
            """,
        },
        select=["FPR"],
    )
    assert [f.rule for f in findings] == ["FPR001"]
    assert "'gamma'" in findings[0].message


def test_payload_method_on_dataclass_is_checked(lint_tree):
    findings = lint_tree(
        {
            "repro/exec/task.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Task:
                source: object
                utilization: float
                seed: int = 0

                def payload(self):
                    return {
                        "kind": "task",
                        "source": repr(self.source),
                        "utilization": self.utilization,
                    }
            """
        },
        select=["FPR"],
    )
    assert [f.rule for f in findings] == ["FPR001"]
    assert "'seed'" in findings[0].message


def test_extra_payload_keys_are_allowed(lint_tree):
    # kind/solver_version-style keys carry no matching field; that is fine.
    files = dict(COMPLETE)
    files["repro/core/fingerprint.py"] = files["repro/core/fingerprint.py"].replace(
        '"kind": "knobs",', '"kind": "knobs", "encoder_version": 2,'
    )
    assert lint_tree(files, select=["FPR"]) == []


def test_class_var_and_unknown_classes_are_ignored(lint_tree):
    assert (
        lint_tree(
            {
                "repro/core/fingerprint.py": """\
                from typing import ClassVar
                from dataclasses import dataclass
                from somewhere import Alien

                @dataclass
                class WithConst:
                    VERSION: ClassVar[int] = 3
                    value: float

                def payload_of(obj):
                    if isinstance(obj, WithConst):
                        return {"kind": "c", "value": obj.value}
                    if isinstance(obj, Alien):
                        return {"kind": "alien"}
                    raise TypeError
                """
            },
            select=["FPR"],
        )
        == []
    )


GROUPED = {
    "repro/exec/task.py": """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Task:
        source: object
        utilization: float
        config: object = None

        def payload(self):
            return {
                "kind": "task",
                "source": repr(self.source),
                "utilization": self.utilization,
                "config": repr(self.config),
            }

        def group_key(self):
            return {"kind": "task_group", "config": repr(self.config)}
    """
}


def test_group_key_subset_of_payload_is_clean(lint_tree):
    assert lint_tree(GROUPED, select=["FPR"]) == []


def test_group_key_outside_payload_fires(lint_tree):
    files = {
        "repro/exec/task.py": GROUPED["repro/exec/task.py"].replace(
            '"config": repr(self.config)}',
            '"config": repr(self.config), "shard": 7}',
        )
    }
    findings = lint_tree(files, select=["FPR"])
    assert [f.rule for f in findings] == ["FPR001"]
    assert "'shard'" in findings[0].message
    assert "group_key" in findings[0].message


def test_group_key_without_literal_payload_is_skipped(lint_tree):
    # No dict-literal payload to compare against: partial knowledge, no finding.
    findings = lint_tree(
        {
            "repro/exec/task.py": """\
            class Task:
                def payload(self):
                    return self._payload

                def group_key(self):
                    return {"kind": "g", "mystery": 1}
            """
        },
        select=["FPR"],
    )
    assert findings == []


def test_adding_unfingerprinted_field_to_real_solver_config_is_caught(
    lint_tree, repo_root: Path
):
    """The acceptance scenario: grow SolverConfig, forget the encoder."""
    solver_src = (repo_root / "src/repro/core/solver.py").read_text(encoding="utf-8")
    needle = "    fft_threshold_bins: int = DEFAULT_FFT_THRESHOLD_BINS\n"
    assert solver_src.count(needle) == 1, "SolverConfig layout changed; update test"
    mutated = solver_src.replace(needle, needle + "    shiny_new_knob: int = 0\n")

    files = {
        "repro/core/solver.py": mutated,
        "repro/core/fingerprint.py": (repo_root / "src/repro/core/fingerprint.py").read_text(
            encoding="utf-8"
        ),
        "repro/exec/task.py": (repo_root / "src/repro/exec/task.py").read_text(
            encoding="utf-8"
        ),
    }
    findings = lint_tree(files, select=["FPR"])
    assert [f.rule for f in findings] == ["FPR001"]
    assert "SolverConfig" in findings[0].message
    assert "'shiny_new_knob'" in findings[0].message


def test_real_tree_solver_config_is_fully_fingerprinted(lint_tree, repo_root: Path):
    """Unmutated copies of the real encoder/task/config lint clean."""
    files = {
        "repro/core/solver.py": (repo_root / "src/repro/core/solver.py").read_text(
            encoding="utf-8"
        ),
        "repro/core/fingerprint.py": (repo_root / "src/repro/core/fingerprint.py").read_text(
            encoding="utf-8"
        ),
        "repro/exec/task.py": (repo_root / "src/repro/exec/task.py").read_text(
            encoding="utf-8"
        ),
    }
    assert lint_tree(files, select=["FPR"]) == []
