"""CON001/CON002/CON003 fixtures: minimal violating and clean snippets."""

from __future__ import annotations

UNLOCKED_COUNTER = {
    "repro/serve/stats.py": """\
    import threading

    class Tracker:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def record(self):
            self.count += 1  # written without the lock

        def snapshot(self):
            with self._lock:
                return {"count": self.count}
    """
}


def test_unlocked_shared_write_fires(lint_tree):
    findings = lint_tree(UNLOCKED_COUNTER, select=["CON001"])
    assert [f.rule for f in findings] == ["CON001"]
    assert "Tracker.count" in findings[0].message
    assert "record" in findings[0].message and "snapshot" in findings[0].message


def test_locked_write_is_clean(lint_tree):
    fixed = UNLOCKED_COUNTER["repro/serve/stats.py"].replace(
        "            self.count += 1  # written without the lock",
        "            with self._lock:\n                self.count += 1",
    )
    assert fixed != UNLOCKED_COUNTER["repro/serve/stats.py"]
    assert lint_tree({"repro/serve/stats.py": fixed}, select=["CON001"]) == []


def test_init_writes_and_single_method_attrs_are_exempt(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/x.py": """\
                import threading

                class Solo:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.shared = 0

                    def only_writer_and_reader(self):
                        self.private_scratch = 1  # touched in one method only
                        return self.private_scratch
                """
            },
            select=["CON001"],
        )
        == []
    )


def test_lockless_class_is_out_of_scope(lint_tree):
    # No lock attribute -> the class opted out of the discipline entirely.
    assert (
        lint_tree(
            {
                "repro/serve/x.py": """\
                class Plain:
                    def a(self):
                        self.n = 1

                    def b(self):
                        self.n = 2
                """
            },
            select=["CON001"],
        )
        == []
    )


NESTED_LOCKS = """\
import threading

class TwoLocks:
    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()

    def work(self):
        with self._alpha:
            with self._beta:
                return 1
"""


def test_nested_locks_without_declared_order_fire(lint_tree):
    findings = lint_tree({"repro/serve/locks.py": NESTED_LOCKS}, select=["CON002"])
    assert [f.rule for f in findings] == ["CON002"]
    assert "LOCK_ORDER" in findings[0].message


def test_nested_locks_following_declared_order_are_clean(lint_tree):
    code = 'LOCK_ORDER = ("_alpha", "_beta")\n' + NESTED_LOCKS
    assert lint_tree({"repro/serve/locks.py": code}, select=["CON002"]) == []


def test_nested_locks_against_declared_order_fire(lint_tree):
    code = 'LOCK_ORDER = ("_beta", "_alpha")\n' + NESTED_LOCKS
    findings = lint_tree({"repro/serve/locks.py": code}, select=["CON002"])
    assert [f.rule for f in findings] == ["CON002"]
    assert "violating LOCK_ORDER" in findings[0].message


def test_single_lock_class_never_trips_order_rule(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/locks.py": """\
                import threading

                class OneLock:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def work(self):
                        with self._lock:
                            return 1
                """
            },
            select=["CON002"],
        )
        == []
    )


def test_blocking_call_under_lock_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/serve/svc.py": """\
            import threading
            import time

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self, future):
                    with self._lock:
                        time.sleep(0.1)
                        return future.result(5.0)
            """
        },
        select=["CON003"],
    )
    assert [f.rule for f in findings] == ["CON003", "CON003"]
    assert "time.sleep" in findings[0].message
    assert "future.result" in findings[1].message
    assert "slow()" in findings[0].message


def test_condition_wait_and_unlocked_blocking_are_clean(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/svc.py": """\
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def park(self):
                        with self._cond:
                            self._cond.wait(1.0)  # releases the lock

                    def outside(self, future):
                        time.sleep(0.1)
                        return future.result(5.0)
                """
            },
            select=["CON003"],
        )
        == []
    )


def test_solver_calls_under_lock_fire(lint_tree):
    findings = lint_tree(
        {
            "repro/exec/eng.py": """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.backend = None

                def run(self, tasks):
                    with self._lock:
                        return self.backend.run_tasks(tasks)
            """
        },
        select=["CON003"],
    )
    assert [f.rule for f in findings] == ["CON003"]
    assert "run_tasks" in findings[0].message


ASYNC_BLOCKING = {
    "repro/serve/svc.py": """\
    import time

    class Service:
        async def handle(self, request):
            time.sleep(0.1)  # stalls the event loop
            return request
    """
}


def test_blocking_sleep_in_async_def_fires(lint_tree):
    findings = lint_tree(ASYNC_BLOCKING, select=["ASY001"])
    assert [f.rule for f in findings] == ["ASY001"]
    assert "time.sleep" in findings[0].message
    assert "handle" in findings[0].message


def test_asyncio_sleep_is_the_loop_safe_spelling(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/svc.py": """\
                import asyncio

                class Service:
                    async def handle(self, request):
                        await asyncio.sleep(0.1)
                        return request
                """
            },
            select=["ASY001"],
        )
        == []
    )


def test_sync_cache_io_in_async_def_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/serve/svc.py": """\
            class Service:
                async def lookup(self, keys):
                    return self.engine.cache.get_many(keys)
            """
        },
        select=["ASY001"],
    )
    assert [f.rule for f in findings] == ["ASY001"]
    assert "get_many" in findings[0].message


def test_queue_get_in_async_def_fires_but_awaited_get_is_clean(lint_tree):
    findings = lint_tree(
        {
            "repro/serve/svc.py": """\
            class Service:
                async def pull(self):
                    return self.work_queue.get()
            """
        },
        select=["ASY001"],
    )
    assert [f.rule for f in findings] == ["ASY001"]
    assert (
        lint_tree(
            {
                "repro/serve/svc.py": """\
                class Service:
                    async def pull(self):
                        return await self.work_queue.get()
                """
            },
            select=["ASY001"],
        )
        == []
    )


def test_plain_mapping_get_and_sync_defs_are_exempt(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/svc.py": """\
                import time

                class Service:
                    async def handle(self, headers):
                        return headers.get("content-length"), self.lru.get("k")

                    def blocking_is_fine_off_loop(self):
                        time.sleep(0.1)
                        return self.engine.cache.get_many(["k"])
                """
            },
            select=["ASY001"],
        )
        == []
    )


def test_solver_work_in_async_def_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/serve/svc.py": """\
            class Service:
                async def solve_inline(self, tasks):
                    return self.engine.run_tasks(tasks)
            """
        },
        select=["ASY001"],
    )
    assert [f.rule for f in findings] == ["ASY001"]
    assert "run_in_executor" in findings[0].message
