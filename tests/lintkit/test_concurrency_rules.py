"""CON001/CON002/CON003 fixtures: minimal violating and clean snippets."""

from __future__ import annotations

UNLOCKED_COUNTER = {
    "repro/serve/stats.py": """\
    import threading

    class Tracker:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def record(self):
            self.count += 1  # written without the lock

        def snapshot(self):
            with self._lock:
                return {"count": self.count}
    """
}


def test_unlocked_shared_write_fires(lint_tree):
    findings = lint_tree(UNLOCKED_COUNTER, select=["CON001"])
    assert [f.rule for f in findings] == ["CON001"]
    assert "Tracker.count" in findings[0].message
    assert "record" in findings[0].message and "snapshot" in findings[0].message


def test_locked_write_is_clean(lint_tree):
    fixed = UNLOCKED_COUNTER["repro/serve/stats.py"].replace(
        "            self.count += 1  # written without the lock",
        "            with self._lock:\n                self.count += 1",
    )
    assert fixed != UNLOCKED_COUNTER["repro/serve/stats.py"]
    assert lint_tree({"repro/serve/stats.py": fixed}, select=["CON001"]) == []


def test_init_writes_and_single_method_attrs_are_exempt(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/x.py": """\
                import threading

                class Solo:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.shared = 0

                    def only_writer_and_reader(self):
                        self.private_scratch = 1  # touched in one method only
                        return self.private_scratch
                """
            },
            select=["CON001"],
        )
        == []
    )


def test_lockless_class_is_out_of_scope(lint_tree):
    # No lock attribute -> the class opted out of the discipline entirely.
    assert (
        lint_tree(
            {
                "repro/serve/x.py": """\
                class Plain:
                    def a(self):
                        self.n = 1

                    def b(self):
                        self.n = 2
                """
            },
            select=["CON001"],
        )
        == []
    )


NESTED_LOCKS = """\
import threading

class TwoLocks:
    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()

    def work(self):
        with self._alpha:
            with self._beta:
                return 1
"""


def test_nested_locks_without_declared_order_fire(lint_tree):
    findings = lint_tree({"repro/serve/locks.py": NESTED_LOCKS}, select=["CON002"])
    assert [f.rule for f in findings] == ["CON002"]
    assert "LOCK_ORDER" in findings[0].message


def test_nested_locks_following_declared_order_are_clean(lint_tree):
    code = 'LOCK_ORDER = ("_alpha", "_beta")\n' + NESTED_LOCKS
    assert lint_tree({"repro/serve/locks.py": code}, select=["CON002"]) == []


def test_nested_locks_against_declared_order_fire(lint_tree):
    code = 'LOCK_ORDER = ("_beta", "_alpha")\n' + NESTED_LOCKS
    findings = lint_tree({"repro/serve/locks.py": code}, select=["CON002"])
    assert [f.rule for f in findings] == ["CON002"]
    assert "violating LOCK_ORDER" in findings[0].message


def test_single_lock_class_never_trips_order_rule(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/locks.py": """\
                import threading

                class OneLock:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def work(self):
                        with self._lock:
                            return 1
                """
            },
            select=["CON002"],
        )
        == []
    )


def test_blocking_call_under_lock_fires(lint_tree):
    findings = lint_tree(
        {
            "repro/serve/svc.py": """\
            import threading
            import time

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self, future):
                    with self._lock:
                        time.sleep(0.1)
                        return future.result(5.0)
            """
        },
        select=["CON003"],
    )
    assert [f.rule for f in findings] == ["CON003", "CON003"]
    assert "time.sleep" in findings[0].message
    assert "future.result" in findings[1].message
    assert "slow()" in findings[0].message


def test_condition_wait_and_unlocked_blocking_are_clean(lint_tree):
    assert (
        lint_tree(
            {
                "repro/serve/svc.py": """\
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def park(self):
                        with self._cond:
                            self._cond.wait(1.0)  # releases the lock

                    def outside(self, future):
                        time.sleep(0.1)
                        return future.result(5.0)
                """
            },
            select=["CON003"],
        )
        == []
    )


def test_solver_calls_under_lock_fire(lint_tree):
    findings = lint_tree(
        {
            "repro/exec/eng.py": """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.backend = None

                def run(self, tasks):
                    with self._lock:
                        return self.backend.run_tasks(tasks)
            """
        },
        select=["CON003"],
    )
    assert [f.rule for f in findings] == ["CON003"]
    assert "run_tasks" in findings[0].message
