"""Engine mechanics: suppressions, selection, module naming, reporters."""

from __future__ import annotations

import json

import pytest

from repro.lintkit import (
    Finding,
    LintEngine,
    Severity,
    all_rules,
    render_json,
    render_text,
    rules_by_id,
)
from repro.lintkit.engine import SourceFile

BAD_FLOAT_EQ = """\
def f(x):
    return x == 0.2
"""


def test_catalogue_covers_every_family():
    ids = {rule.id for rule in all_rules()}
    for family in ("FPR001", "CON001", "CON002", "CON003",
                   "NUM001", "NUM002", "NUM003", "NUM004", "API001"):
        assert family in ids
    # Ids are unique and every rule self-describes.
    assert len(ids) == len(all_rules())
    assert all(rule.name and rule.description for rule in all_rules())


def test_select_and_ignore_by_prefix():
    assert {rule.id for rule in rules_by_id(select=["NUM"])} == {
        "NUM001", "NUM002", "NUM003", "NUM004"
    }
    assert {rule.id for rule in rules_by_id(select=["NUM"], ignore=["NUM003"])} == {
        "NUM001", "NUM002", "NUM004"
    }
    with pytest.raises(ValueError, match="unknown rule"):
        rules_by_id(select=["NOPE"])
    with pytest.raises(ValueError, match="unknown rule"):
        rules_by_id(ignore=["XYZ9"])


def test_rule_scoped_suppression_comment(lint_tree):
    clean = lint_tree(
        {"repro/mod.py": "def f(x):\n    return x == 0.2  # lint: ignore[NUM001] calibrated\n"},
        select=["NUM"],
    )
    assert clean == []


def test_bare_suppression_comment_silences_all_rules(lint_tree):
    clean = lint_tree(
        {"repro/mod.py": "def f(x):\n    return x == 0.2  # lint: ignore\n"},
        select=["NUM"],
    )
    assert clean == []


def test_suppression_for_other_rule_does_not_silence(lint_tree):
    findings = lint_tree(
        {"repro/mod.py": "def f(x):\n    return x == 0.2  # lint: ignore[CON001]\n"},
        select=["NUM"],
    )
    assert [f.rule for f in findings] == ["NUM001"]


def test_suppression_only_covers_its_own_line(lint_tree):
    findings = lint_tree(
        {
            "repro/mod.py": (
                "# lint: ignore[NUM001]\n"
                "def f(x):\n"
                "    return x == 0.2\n"
            )
        },
        select=["NUM"],
    )
    assert [f.rule for f in findings] == ["NUM001"]


def test_module_name_derivation(tmp_path):
    path = tmp_path / "src" / "repro" / "core" / "solver.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n", encoding="utf-8")
    assert SourceFile.parse(path).module == "repro.core.solver"
    init = tmp_path / "src" / "repro" / "core" / "__init__.py"
    init.write_text("", encoding="utf-8")
    assert SourceFile.parse(init).module == "repro.core"
    stray = tmp_path / "script.py"
    stray.write_text("x = 1\n", encoding="utf-8")
    assert SourceFile.parse(stray).module == "script"


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "repro" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(:\n", encoding="utf-8")
    engine = LintEngine(rules=rules_by_id(select=["NUM"]), project_root=tmp_path)
    findings = engine.run([tmp_path])
    assert [f.rule for f in findings] == ["LINT000"]
    assert "could not parse" in findings[0].message


def test_text_and_json_reporters(lint_tree, tmp_path):
    findings = lint_tree({"repro/mod.py": BAD_FLOAT_EQ}, select=["NUM001"])
    assert len(findings) == 1

    text = render_text(findings, checked_files=1)
    assert "NUM001" in text
    assert "1 finding" in text
    assert render_text([], checked_files=3).startswith("clean: 0 findings")

    payload = json.loads(
        render_json(findings, checked_files=1, rules=rules_by_id(select=["NUM001"]))
    )
    assert payload["report_version"] == 1
    assert payload["total_findings"] == 1
    assert payload["findings_by_rule"] == {"NUM001": 1}
    assert payload["findings"][0]["rule"] == "NUM001"
    assert payload["findings"][0]["line"] == 2
    assert payload["rules"][0]["id"] == "NUM001"


def test_findings_sort_stably():
    a = Finding(path="a.py", line=2, col=1, rule="NUM001", message="m")
    b = Finding(path="a.py", line=1, col=1, rule="NUM001", message="m")
    c = Finding(path="b.py", line=1, col=1, rule="CON001", message="m", severity=Severity.WARNING)
    assert sorted([c, a, b]) == [b, a, c]
    assert "a.py:2:1" in str(a)
