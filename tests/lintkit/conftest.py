"""Shared fixture helpers: write a snippet tree, lint it, return findings."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lintkit import LintEngine, rules_by_id


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: code}`` under a tmp root and lint it.

    Relative paths mimic the repo layout (``repro/core/mod.py``) so the
    engine's module-name scoping behaves exactly as on the real tree.
    Returns the finding list; rule selection narrows the run to the
    family under test so fixtures stay minimal.
    """

    def run(files: dict[str, str], select=None, ignore=None, api_doc=None):
        for relpath, code in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(code), encoding="utf-8")
        rules = rules_by_id(select=select, ignore=ignore)
        engine = LintEngine(rules=rules, project_root=tmp_path, api_doc=api_doc)
        return engine.run([tmp_path])

    return run


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent
