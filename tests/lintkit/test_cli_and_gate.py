"""The ``repro-lrd lint`` subcommand and the zero-findings repo gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_repo_tree_lints_clean(repo_root, capsys):
    """The CI gate: the shipped tree must produce zero findings."""
    code = main(["lint", str(repo_root / "src" / "repro"), "--root", str(repo_root)])
    out = capsys.readouterr().out
    assert code == 0, f"lint findings on the shipped tree:\n{out}"
    assert "clean: 0 findings" in out


def test_lint_cli_reports_findings_and_exit_code(tmp_path, capsys):
    bad = tmp_path / "repro" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x):\n    return x == 0.25\n", encoding="utf-8")
    code = main(["lint", str(tmp_path), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "NUM001" in out and "repro/mod.py:2" in out


def test_lint_rules_reach_the_netsim_package(tmp_path, capsys):
    """NUM hygiene rules apply inside ``repro.netsim``, not just core.

    The simulator's determinism contract forbids global RNG state and
    wall-clock reads in simulation logic; this pins the rule families
    to the package path so a future scoping change cannot silently
    exempt it.
    """
    bad = tmp_path / "repro" / "netsim" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\nimport numpy as np\n\n\n"
        "def f():\n    return np.random.rand(), time.time()\n",
        encoding="utf-8",
    )
    code = main(["lint", str(tmp_path), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "NUM002" in out and "NUM003" in out


def test_lint_cli_json_format_and_out_file(tmp_path, capsys):
    bad = tmp_path / "repro" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n", encoding="utf-8")
    report_path = tmp_path / "report.json"
    code = main(
        [
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--format", "json", "--out", str(report_path),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["total_findings"] == 1
    assert payload["findings"][0]["rule"] == "NUM003"
    assert any(rule["id"] == "NUM003" for rule in payload["rules"])


def test_lint_cli_select_and_ignore(tmp_path, capsys):
    bad = tmp_path / "repro" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x):\n    return x == 0.25\n", encoding="utf-8")
    assert main(["lint", str(tmp_path), "--root", str(tmp_path), "--select", "CON"]) == 0
    capsys.readouterr()
    assert main(["lint", str(tmp_path), "--root", str(tmp_path), "--ignore", "NUM001"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", str(tmp_path), "--select", "BOGUS"])


def test_lint_cli_rejects_missing_path(tmp_path):
    with pytest.raises(SystemExit, match="no such path"):
        main(["lint", str(tmp_path / "nowhere")])


def test_lint_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("FPR001", "CON001", "NUM001", "API001"):
        assert rule_id in out
