"""Tests for capacity planning (effective bandwidth, buffer sizing, mux gain)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import FluidQueue, SolverConfig
from repro.queueing.dimensioning import (
    multiplexing_gain,
    required_buffer,
    required_service_rate,
)

FAST = SolverConfig(initial_bins=64, max_bins=1024, relative_gap=0.3, max_iterations=20_000)


class TestRequiredServiceRate:
    def test_meets_target(self, small_source):
        target = 1e-3
        rate = required_service_rate(small_source, 0.5, target, config=FAST)
        loss = FluidQueue(
            source=small_source, service_rate=rate, buffer_size=0.5 * rate
        ).loss_rate(FAST).upper
        assert loss <= target * 1.05

    def test_between_mean_and_peak(self, small_source):
        rate = required_service_rate(small_source, 0.5, 1e-4, config=FAST)
        assert small_source.mean_rate < rate <= small_source.marginal.peak

    def test_tighter_target_needs_more_bandwidth(self, small_source):
        loose = required_service_rate(small_source, 0.5, 1e-2, config=FAST)
        tight = required_service_rate(small_source, 0.5, 1e-6, config=FAST)
        assert tight >= loose

    def test_bigger_buffer_needs_less_bandwidth(self, small_source):
        small_buffer = required_service_rate(small_source, 0.05, 1e-3, config=FAST)
        big_buffer = required_service_rate(small_source, 2.0, 1e-3, config=FAST)
        assert big_buffer <= small_buffer + 1e-9

    def test_validation(self, small_source):
        with pytest.raises(ValueError, match="target_loss"):
            required_service_rate(small_source, 0.5, 0.0)
        with pytest.raises(ValueError, match="normalized_buffer"):
            required_service_rate(small_source, 0.0, 1e-3)


class TestRequiredBuffer:
    def test_meets_target(self, small_source):
        target = 1e-2
        buffer_seconds = required_buffer(
            small_source, utilization=0.7, target_loss=target,
            max_normalized_buffer=20.0, config=FAST,
        )
        assert buffer_seconds is not None
        service_rate = small_source.mean_rate / 0.7
        loss = FluidQueue(
            source=small_source,
            service_rate=service_rate,
            buffer_size=buffer_seconds * service_rate,
        ).loss_rate(FAST).upper
        assert loss <= target * 1.1

    def test_none_when_unreachable(self, small_source):
        # At utilization near 1 with long correlation, no modest buffer helps.
        result = required_buffer(
            small_source.with_cutoff(50.0),
            utilization=0.98,
            target_loss=1e-9,
            max_normalized_buffer=2.0,
            config=FAST,
        )
        assert result is None

    def test_tighter_target_needs_more_buffer(self, small_source):
        loose = required_buffer(small_source, 0.7, 1e-1, max_normalized_buffer=20.0, config=FAST)
        tight = required_buffer(small_source, 0.7, 1e-3, max_normalized_buffer=20.0, config=FAST)
        assert loose is not None and tight is not None
        assert tight >= loose


class TestMultiplexingGain:
    def test_utilization_improves_with_streams(self, small_source):
        gain = multiplexing_gain(
            small_source, normalized_buffer=0.2, target_loss=1e-3,
            streams=np.array([1, 4, 16]), config=FAST,
        )
        assert np.all(np.diff(gain.per_stream_bandwidth) <= 1e-9)
        assert np.all(np.diff(gain.utilization) >= -1e-9)
        assert np.all(gain.utilization <= 1.0)

    def test_validation(self, small_source):
        with pytest.raises(ValueError, match="streams"):
            multiplexing_gain(small_source, 0.2, 1e-3, np.array([]))
