"""Tests for the Markov-modulated fluid queue spectral solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.fluid_sim import simulate_trace_queue
from repro.queueing.mmfq import MarkovFluidModel, mmfq_loss_rate, mmfq_occupancy_cdf


@pytest.fixture
def onoff_model() -> MarkovFluidModel:
    # off -> on at rate 1, on -> off at rate 2; peak rate 3.
    generator = np.array([[-1.0, 1.0], [2.0, -2.0]])
    return MarkovFluidModel(generator=generator, rates=np.array([0.0, 3.0]))


class TestModel:
    def test_stationary_distribution(self, onoff_model):
        np.testing.assert_allclose(onoff_model.stationary(), [2.0 / 3.0, 1.0 / 3.0])
        assert onoff_model.mean_rate == pytest.approx(1.0)

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="square"):
            MarkovFluidModel(generator=np.zeros((2, 3)), rates=np.zeros(2))
        with pytest.raises(ValueError, match="sum to zero"):
            MarkovFluidModel(generator=np.array([[-1.0, 0.5], [1.0, -1.0]]), rates=np.zeros(2))
        with pytest.raises(ValueError, match="off-diagonal"):
            MarkovFluidModel(
                generator=np.array([[1.0, -1.0], [1.0, -1.0]]), rates=np.zeros(2)
            )
        with pytest.raises(ValueError, match="non-negative"):
            MarkovFluidModel(
                generator=np.array([[-1.0, 1.0], [1.0, -1.0]]), rates=np.array([-1.0, 1.0])
            )

    def test_rate_autocovariance_exponential(self, onoff_model):
        # Two-state chain: phi(t) = var * exp(-(a+b) t).
        lags = np.array([0.0, 0.5, 1.0])
        cov = onoff_model.rate_autocovariance(lags)
        variance = (2.0 / 3.0) * (1.0 / 3.0) * 9.0
        np.testing.assert_allclose(cov, variance * np.exp(-3.0 * lags), rtol=1e-8)

    def test_simulate_rates_statistics(self, onoff_model, rng):
        trace = onoff_model.simulate_rates(duration=5000.0, bin_width=0.1, rng=rng)
        assert trace.mean() == pytest.approx(1.0, rel=0.1)
        assert trace.max() <= 3.0 + 1e-9


class TestLossRate:
    def test_matches_simulation(self, onoff_model, rng):
        c, b = 1.5, 2.0
        analytic = mmfq_loss_rate(onoff_model, c, b)
        trace = onoff_model.simulate_rates(duration=50_000.0, bin_width=0.02, rng=rng)
        simulated = simulate_trace_queue(trace, 0.02, c, b).loss_rate
        assert analytic == pytest.approx(simulated, rel=0.1)

    def test_loss_decreasing_in_buffer(self, onoff_model):
        losses = [mmfq_loss_rate(onoff_model, 1.5, b) for b in (0.1, 1.0, 4.0)]
        assert losses[0] > losses[1] > losses[2] >= 0.0

    def test_zero_buffer_closed_form(self, onoff_model):
        loss = mmfq_loss_rate(onoff_model, 1.5, 0.0)
        # l = pi_on (r - c) / mean = (1/3)(1.5)/1.
        assert loss == pytest.approx(0.5)

    def test_all_down_states_no_loss(self):
        generator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        model = MarkovFluidModel(generator=generator, rates=np.array([0.0, 0.5]))
        assert mmfq_loss_rate(model, 1.0, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_three_state_birth_death(self, rng):
        generator = np.array(
            [[-1.0, 1.0, 0.0], [0.5, -1.5, 1.0], [0.0, 1.0, -1.0]]
        )
        model = MarkovFluidModel(generator=generator, rates=np.array([0.0, 1.0, 3.0]))
        c, b = 1.4, 1.5
        analytic = mmfq_loss_rate(model, c, b)
        trace = model.simulate_rates(duration=50_000.0, bin_width=0.02, rng=rng)
        simulated = simulate_trace_queue(trace, 0.02, c, b).loss_rate
        assert analytic == pytest.approx(simulated, rel=0.12)

    def test_rate_equal_to_service_nudged(self, onoff_model):
        model = MarkovFluidModel(
            generator=onoff_model.generator, rates=np.array([0.0, 1.5])
        )
        loss = mmfq_loss_rate(model, 1.5, 1.0)
        assert loss == pytest.approx(0.0, abs=1e-6)


class TestInfiniteBufferOverflow:
    def test_matches_simulation(self, onoff_model, rng):
        from repro.queueing.mmfq import mmfq_overflow_probability

        c = 1.5
        levels = np.array([0.5, 1.0, 2.0, 4.0])
        analytic = mmfq_overflow_probability(onoff_model, c, levels)
        trace = onoff_model.simulate_rates(duration=100_000.0, bin_width=0.05, rng=rng)
        occupancy = 0.0
        exceed = np.zeros(levels.size)
        for rate in trace:
            occupancy = max(0.0, occupancy + (rate - c) * 0.05)
            exceed += occupancy > levels
        empirical = exceed / trace.size
        np.testing.assert_allclose(analytic, empirical, atol=0.02)

    def test_exponential_tail_for_two_states(self, onoff_model):
        from repro.queueing.mmfq import mmfq_overflow_probability

        levels = np.array([1.0, 2.0, 3.0])
        p = mmfq_overflow_probability(onoff_model, 1.5, levels)
        # Two-state AMS: single stable mode, exactly geometric decay.
        assert p[1] / p[0] == pytest.approx(p[2] / p[1], rel=1e-6)

    def test_dominates_finite_buffer_atom(self, onoff_model):
        from repro.queueing.mmfq import mmfq_loss_rate, mmfq_overflow_probability

        c, b = 1.5, 1.5
        overflow = float(mmfq_overflow_probability(onoff_model, c, np.array([b]))[0])
        loss = mmfq_loss_rate(onoff_model, c, b)
        # Footnote 2: overflow probability upper-bounds the loss rate (the
        # loss also carries a (r-c)/mean factor < 1 here).
        assert overflow >= loss

    def test_requires_stability(self, onoff_model):
        from repro.queueing.mmfq import mmfq_overflow_probability

        with pytest.raises(ValueError, match="utilization"):
            mmfq_overflow_probability(onoff_model, 0.9, np.array([1.0]))


class TestOccupancyCdf:
    def test_monotone_and_bounded(self, onoff_model):
        points = np.linspace(0.0, 2.0, 21)
        cdf = mmfq_occupancy_cdf(onoff_model, 1.5, 2.0, points)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert np.all((cdf >= 0.0) & (cdf <= 1.0))

    def test_atom_at_buffer(self, onoff_model, rng):
        # The spectral cdf evaluated at B is F(B^-): the gap to 1 is the
        # probability mass pinned at the full buffer, which a simulation of
        # the same queue must reproduce.
        c, b = 1.5, 1.0
        cdf_at_b = mmfq_occupancy_cdf(onoff_model, c, b, np.array([b]))[0]
        atom = 1.0 - cdf_at_b
        assert atom > 0.0
        trace = onoff_model.simulate_rates(duration=40_000.0, bin_width=0.02, rng=rng)
        from repro.queueing.fluid_sim import simulate_trace_queue

        sim = simulate_trace_queue(trace, 0.02, c, b)
        assert atom == pytest.approx(sim.full_fraction, abs=0.05)

    def test_rejects_points_outside_buffer(self, onoff_model):
        with pytest.raises(ValueError, match="points"):
            mmfq_occupancy_cdf(onoff_model, 1.5, 1.0, np.array([2.0]))
