"""Tests for hyperexponential fitting and Markov source constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.queueing.markov import (
    HyperexponentialFit,
    fit_hyperexponential,
    multiscale_onoff_model,
    renewal_markov_source,
)


@pytest.fixture
def target_law() -> TruncatedPareto:
    return TruncatedPareto(theta=0.02, alpha=1.2, cutoff=50.0)


class TestHyperexponentialFit:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            HyperexponentialFit(weights=np.array([1.0]), exit_rates=np.array([0.0]))
        with pytest.raises(ValueError, match="sum to one"):
            HyperexponentialFit(weights=np.array([0.5, 0.4]), exit_rates=np.array([1.0, 2.0]))

    def test_sf_and_mean(self):
        fit = HyperexponentialFit(
            weights=np.array([0.5, 0.5]), exit_rates=np.array([1.0, 10.0])
        )
        assert float(fit.sf(0.0)) == pytest.approx(1.0)
        assert fit.mean == pytest.approx(0.5 + 0.05)

    def test_residual_sf_decreasing(self):
        fit = HyperexponentialFit(
            weights=np.array([0.3, 0.7]), exit_rates=np.array([0.5, 5.0])
        )
        t = np.linspace(0.0, 10.0, 50)
        values = np.asarray(fit.residual_sf(t))
        assert values[0] == pytest.approx(1.0)
        assert np.all(np.diff(values) <= 1e-12)

    def test_fw_fit_accuracy(self, target_law):
        fit = fit_hyperexponential(target_law, phases=10)
        ts = np.logspace(-3, 1.5, 40)
        target = np.asarray(target_law.sf(ts))
        fitted = np.asarray(fit.sf(ts))
        relative = np.abs(fitted - target) / np.maximum(target, 1e-12)
        assert float(relative.max()) < 0.12

    def test_fw_fit_mean_close(self, target_law):
        fit = fit_hyperexponential(target_law, phases=10)
        assert fit.mean == pytest.approx(target_law.mean, rel=0.1)

    def test_weights_normalized_and_sorted(self, target_law):
        fit = fit_hyperexponential(target_law, phases=8)
        assert fit.weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(fit.exit_rates) <= 0.0)  # fast phases first

    def test_rejects_bad_phase_count(self, target_law):
        with pytest.raises(ValueError, match="phases"):
            fit_hyperexponential(target_law, phases=0)


class TestRenewalMarkovSource:
    def test_state_space_size(self, target_law, three_level_marginal):
        fit = fit_hyperexponential(target_law, phases=6)
        model = renewal_markov_source(three_level_marginal, fit)
        assert model.size == 3 * fit.phases

    def test_mean_rate_matches_marginal(self, target_law, three_level_marginal):
        fit = fit_hyperexponential(target_law, phases=6)
        model = renewal_markov_source(three_level_marginal, fit)
        assert model.mean_rate == pytest.approx(three_level_marginal.mean, rel=1e-6)

    def test_covariance_approximates_cutoff_model(self, target_law, onoff_marginal):
        fit = fit_hyperexponential(target_law, phases=10)
        model = renewal_markov_source(onoff_marginal, fit)
        source = CutoffFluidSource(marginal=onoff_marginal, interarrival=target_law)
        lags = np.array([0.05, 0.2, 1.0, 5.0])
        markov_cov = model.rate_autocovariance(lags)
        exact_cov = np.asarray(source.autocovariance(lags))
        np.testing.assert_allclose(markov_cov, exact_cov, atol=0.06)

    def test_generator_rows_sum_to_zero(self, target_law, onoff_marginal):
        fit = fit_hyperexponential(target_law, phases=4)
        model = renewal_markov_source(onoff_marginal, fit)
        np.testing.assert_allclose(model.generator.sum(axis=1), 0.0, atol=1e-10)


class TestFitMultiscaleSource:
    def test_mean_matched_exactly(self, small_source):
        from repro.queueing.markov import fit_multiscale_source

        model = fit_multiscale_source(small_source, scales=5)
        assert model.mean_rate == pytest.approx(small_source.mean_rate, rel=1e-6)

    def test_covariance_matched(self, small_source):
        from repro.queueing.markov import fit_multiscale_source

        model = fit_multiscale_source(small_source, scales=6)
        lags = np.array([0.05, 0.2, 1.0, 3.0])
        fitted = model.rate_autocovariance(lags)
        exact = np.asarray(small_source.autocovariance(lags))
        np.testing.assert_allclose(fitted, exact, atol=0.06 * small_source.rate_variance)

    def test_loss_close_to_reference(self, small_source):
        from repro.core.solver import FluidQueue, SolverConfig
        from repro.queueing.markov import fit_multiscale_source
        from repro.queueing.mmfq import mmfq_loss_rate

        model = fit_multiscale_source(small_source, scales=6)
        reference = FluidQueue(
            source=small_source, service_rate=1.25, buffer_size=1.0
        ).loss_rate(SolverConfig(relative_gap=0.05)).estimate
        fitted = mmfq_loss_rate(model, 1.25, 1.0)
        assert fitted == pytest.approx(reference, rel=0.5)

    def test_explicit_on_probability_respected_when_feasible(self, small_source):
        from repro.queueing.markov import fit_multiscale_source

        model = fit_multiscale_source(small_source, scales=4, on_probability=0.05)
        assert model.mean_rate == pytest.approx(small_source.mean_rate, rel=1e-6)

    def test_rejects_wrong_type(self):
        from repro.queueing.markov import fit_multiscale_source

        with pytest.raises(TypeError, match="CutoffFluidSource"):
            fit_multiscale_source("not a source")


class TestMultiscaleOnOff:
    def test_state_count(self):
        model = multiscale_onoff_model(scales=3, fastest_time=0.01)
        assert model.size == 8

    def test_mean_rate(self):
        model = multiscale_onoff_model(
            scales=4, fastest_time=0.01, peak_rate_per_scale=2.0, on_probability=0.25
        )
        assert model.mean_rate == pytest.approx(4 * 2.0 * 0.25, rel=1e-8)

    def test_covariance_is_sum_of_exponentials(self):
        model = multiscale_onoff_model(
            scales=3, fastest_time=0.1, scale_factor=4.0, on_probability=0.5
        )
        lags = np.array([0.0, 0.1, 0.4, 1.6])
        cov = model.rate_autocovariance(lags)
        per_chain_var = 0.25  # p(1-p) * rate^2
        expected = sum(
            per_chain_var * np.exp(-lags / (0.1 * 4.0**j)) for j in range(3)
        )
        np.testing.assert_allclose(cov, expected, rtol=1e-6, atol=1e-9)

    def test_pseudo_power_law_span(self):
        # Covariance stays within a factor ~3 of a true power law across the
        # covered scale range (the design goal of the construction).
        model = multiscale_onoff_model(scales=6, fastest_time=0.01, scale_factor=4.0)
        lags = np.logspace(-2, 1, 20)
        cov = model.rate_autocovariance(lags)
        assert np.all(cov > 0.0)
        assert np.all(np.diff(cov) < 0.0)

    def test_rejects_excessive_scales(self):
        with pytest.raises(ValueError, match="refuse"):
            multiscale_onoff_model(scales=13, fastest_time=0.01)
