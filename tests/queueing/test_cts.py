"""Tests for the dominant-time-scale (critical time scale) estimator."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.queueing.cts import dominant_time_scale, gaussian_overflow_exponent


class TestExponent:
    def test_positive(self, small_source):
        value = gaussian_overflow_exponent(
            small_source, service_rate=1.25, buffer_size=1.0, horizon=1.0
        )
        assert value > 0.0

    def test_larger_buffer_larger_exponent(self, small_source):
        small = gaussian_overflow_exponent(small_source, 1.25, 0.5, 1.0)
        large = gaussian_overflow_exponent(small_source, 1.25, 2.0, 1.0)
        assert large > small


class TestDominantTimeScale:
    def test_result_on_grid(self, small_source):
        result = dominant_time_scale(small_source, service_rate=1.25, buffer_size=1.0)
        assert result.time_scale in result.grid
        assert result.exponent == result.exponents.min()

    def test_interior_minimum(self, small_source):
        result = dominant_time_scale(small_source, 1.25, 1.0, grid_points=96)
        index = int(np.argmin(result.exponents))
        assert 0 < index < result.grid.size - 1

    def test_scales_with_buffer(self, small_source):
        small = dominant_time_scale(small_source, 1.25, 0.5).time_scale
        large = dominant_time_scale(small_source, 1.25, 4.0).time_scale
        assert large > small

    def test_more_correlation_longer_time_scale(self, onoff_marginal):
        short = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=0.5)
        )
        long = CutoffFluidSource(
            marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=50.0)
        )
        t_short = dominant_time_scale(short, 1.25, 1.0).time_scale
        t_long = dominant_time_scale(long, 1.25, 1.0).time_scale
        assert t_long >= t_short

    def test_requires_stability(self, small_source):
        with pytest.raises(ValueError, match="utilization"):
            dominant_time_scale(small_source, service_rate=0.9, buffer_size=1.0)

    def test_grid_validation(self, small_source):
        with pytest.raises(ValueError, match="grid_points"):
            dominant_time_scale(small_source, 1.25, 1.0, grid_points=4)
