"""Tests for the reset-interval analysis behind the CH argument."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.horizon import correlation_horizon
from repro.queueing.fluid_sim import inter_reset_times


class TestInterResetTimes:
    def test_deterministic_sawtooth(self):
        # Alternate 10 bins of overload (+1/bin) and 10 bins of underload:
        # the queue (B = 5, started at 2.5) pins at B then at 0, one reset
        # per half-period.
        rates = np.tile(np.concatenate([np.full(10, 2.0), np.zeros(10)]), 8)
        times = inter_reset_times(rates, bin_width=1.0, service_rate=1.0, buffer_size=5.0)
        assert times.size >= 10
        # Resets alternate full/empty every 10 bins after the transient.
        assert np.median(times) == pytest.approx(10.0, abs=1.0)

    def test_no_resets_for_huge_buffer(self, rng):
        rates = 1.0 + 0.01 * rng.standard_normal(500)
        times = inter_reset_times(rates, 0.1, service_rate=1.0, buffer_size=1e6)
        assert times.size == 0

    def test_boundary_dwell_counts_once(self):
        # Sustained overload: the queue hits B once and stays; a single
        # reset event, so no intervals.
        rates = np.full(100, 2.0)
        times = inter_reset_times(rates, 1.0, service_rate=1.0, buffer_size=3.0)
        assert times.size == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="rates"):
            inter_reset_times(np.array([]), 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="buffer_size"):
            inter_reset_times(np.array([1.0]), 1.0, 1.0, 0.0)

    def test_mean_reset_time_grows_with_buffer(self, small_source, rng):
        trace = small_source.rate_trace(duration=2000.0, bin_width=0.05, rng=rng)
        service_rate = small_source.mean_rate / 0.8
        small = inter_reset_times(trace, 0.05, service_rate, 0.2 * service_rate)
        large = inter_reset_times(trace, 0.05, service_rate, 1.0 * service_rate)
        assert small.size > large.size >= 2
        assert large.mean() > small.mean()

    def test_eq26_premise(self, small_source, rng):
        """Eq. 26's premise: resets occur on the T_CH time scale.

        The analytic horizon and the measured mean inter-reset time should
        agree within an order of magnitude (Eq. 26 is a bound-flavoured
        estimate, not an exact law).
        """
        trace = small_source.rate_trace(duration=4000.0, bin_width=0.05, rng=rng)
        service_rate = small_source.mean_rate / 0.8
        buffer_size = 0.5 * service_rate
        observed = inter_reset_times(trace, 0.05, service_rate, buffer_size)
        assert observed.size >= 10
        analytic = correlation_horizon(small_source, buffer_size)
        ratio = observed.mean() / analytic
        assert 0.1 < ratio < 10.0