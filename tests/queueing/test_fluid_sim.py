"""Tests for the trace-driven and event-driven queue simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.fluid_sim import (
    simulate_source_queue,
    simulate_trace_queue,
    simulate_trace_queue_multi,
)


class TestTraceQueue:
    def test_no_loss_when_service_dominates(self):
        rates = np.array([1.0, 2.0, 1.5, 0.5])
        result = simulate_trace_queue(rates, 1.0, service_rate=3.0, buffer_size=1.0)
        assert result.loss_rate == 0.0
        assert result.lost_work == 0.0
        assert result.empty_fraction == 1.0

    def test_deterministic_overflow(self):
        # Constant rate 2 into service 1 with buffer 0.5: after the buffer
        # fills, each unit-time bin loses 1 unit of work.
        rates = np.full(10, 2.0)
        result = simulate_trace_queue(rates, 1.0, service_rate=1.0, buffer_size=0.5)
        expected_lost = 10 * 1.0 - 0.5  # total excess minus what the buffer held
        assert result.lost_work == pytest.approx(expected_lost)
        assert result.loss_rate == pytest.approx(expected_lost / 20.0)
        assert result.full_fraction == 1.0

    def test_zero_buffer(self):
        rates = np.array([2.0, 0.0, 2.0, 0.0])
        result = simulate_trace_queue(rates, 1.0, service_rate=1.0, buffer_size=0.0)
        assert result.lost_work == pytest.approx(2.0)
        assert result.loss_rate == pytest.approx(0.5)

    def test_work_conservation(self, rng):
        # arrived = lost + served + final occupancy; served <= c * T.
        rates = rng.gamma(2.0, 1.0, 5000)
        c, b, dt = 2.2, 3.0, 0.1
        result = simulate_trace_queue(rates, dt, service_rate=c, buffer_size=b)
        assert result.arrived_work == pytest.approx(rates.sum() * dt)
        assert 0.0 <= result.mean_occupancy <= b

    def test_initial_occupancy(self):
        rates = np.array([0.0, 0.0])
        result = simulate_trace_queue(
            rates, 1.0, service_rate=1.0, buffer_size=5.0, initial_occupancy=3.0
        )
        # Drains 1 per bin: occupancy after bins: 2, 1 -> mean 1.5.
        assert result.mean_occupancy == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="rates"):
            simulate_trace_queue(np.array([]), 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="initial_occupancy"):
            simulate_trace_queue(np.array([1.0]), 1.0, 1.0, 1.0, initial_occupancy=2.0)


class TestMultiBuffer:
    def test_matches_scalar_simulation(self, rng):
        rates = rng.gamma(2.0, 1.0, 3000)
        buffers = np.array([0.0, 0.5, 2.0, 8.0])
        multi = simulate_trace_queue_multi(rates, 0.1, 2.2, buffers)
        for i, b in enumerate(buffers):
            scalar = simulate_trace_queue(rates, 0.1, 2.2, float(b))
            assert multi[i] == pytest.approx(scalar.loss_rate, abs=1e-12)

    def test_loss_decreasing_in_buffer(self, rng):
        rates = rng.gamma(2.0, 1.0, 5000)
        buffers = np.linspace(0.0, 10.0, 8)
        losses = simulate_trace_queue_multi(rates, 0.1, 2.1, buffers)
        assert np.all(np.diff(losses) <= 1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="buffer_sizes"):
            simulate_trace_queue_multi(np.array([1.0]), 1.0, 1.0, np.array([]))
        with pytest.raises(ValueError, match="non-negative"):
            simulate_trace_queue_multi(np.array([1.0]), 1.0, 1.0, np.array([-1.0]))


class TestSourceQueue:
    def test_statistics_sane(self, small_source, rng):
        result = simulate_source_queue(
            small_source, service_rate=1.25, buffer_size=1.0, intervals=50_000, rng=rng
        )
        assert 0.0 < result.loss_rate < 1.0
        assert 0.0 <= result.mean_occupancy <= 1.0
        assert 0.0 <= result.full_fraction <= 1.0

    def test_zero_loss_when_service_dominates(self, small_source, rng):
        result = simulate_source_queue(
            small_source, service_rate=2.5, buffer_size=1.0, intervals=10_000, rng=rng
        )
        assert result.loss_rate == 0.0

    def test_warmup_reduces_startup_bias(self, small_source):
        # With a large buffer, starting empty underestimates loss; warm-up
        # must not *decrease* the estimate.
        cold = simulate_source_queue(
            small_source, 1.25, 3.0, intervals=40_000, rng=np.random.default_rng(1)
        )
        warm = simulate_source_queue(
            small_source,
            1.25,
            3.0,
            intervals=40_000,
            rng=np.random.default_rng(1),
            warmup_intervals=5_000,
        )
        assert warm.loss_rate >= cold.loss_rate * 0.5  # sanity, not strict order

    def test_validation(self, small_source, rng):
        with pytest.raises(ValueError, match="intervals"):
            simulate_source_queue(small_source, 1.25, 1.0, intervals=0, rng=rng)
        with pytest.raises(ValueError, match="warmup"):
            simulate_source_queue(
                small_source, 1.25, 1.0, intervals=10, rng=rng, warmup_intervals=-1
            )
