"""Tests for the Norros fBm queue asymptotics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.queueing.fbm import (
    fbm_parameters_from_source,
    norros_overflow_probability,
    weibull_tail_exponent,
)


class TestWeibullExponent:
    def test_markovian_limit(self):
        assert weibull_tail_exponent(0.5) == pytest.approx(1.0)

    def test_flattens_toward_one(self):
        assert weibull_tail_exponent(0.9) == pytest.approx(0.2)

    def test_bounds(self):
        with pytest.raises(ValueError, match="hurst"):
            weibull_tail_exponent(1.0)


class TestNorrosOverflow:
    def test_at_zero_level_is_one(self):
        assert norros_overflow_probability(0.0, 1.0, 1.5, 0.8, 1.0) == pytest.approx(1.0)

    def test_decreasing_in_level(self):
        x = np.linspace(0.0, 10.0, 30)
        p = np.asarray(norros_overflow_probability(x, 1.0, 1.5, 0.8, 1.0))
        assert np.all(np.diff(p) <= 0.0)
        assert np.all((p >= 0.0) & (p <= 1.0))

    def test_weibull_shape(self):
        # -log P(Q > x) must scale like x^{2-2H}.
        hurst = 0.75
        p1 = norros_overflow_probability(1.0, 1.0, 1.5, hurst, 1.0)
        p4 = norros_overflow_probability(4.0, 1.0, 1.5, hurst, 1.0)
        ratio = math.log(p4) / math.log(p1)
        assert ratio == pytest.approx(4.0 ** (2.0 - 2.0 * hurst), rel=1e-9)

    def test_markovian_case_is_exponential(self):
        p1 = norros_overflow_probability(1.0, 1.0, 2.0, 0.5, 1.0)
        p2 = norros_overflow_probability(2.0, 1.0, 2.0, 0.5, 1.0)
        assert p2 == pytest.approx(p1**2, rel=1e-9)

    def test_higher_hurst_fatter_tail(self):
        low = norros_overflow_probability(10.0, 1.0, 1.5, 0.6, 1.0)
        high = norros_overflow_probability(10.0, 1.0, 1.5, 0.9, 1.0)
        assert high > low

    def test_more_capacity_thinner_tail(self):
        slow = norros_overflow_probability(5.0, 1.0, 1.2, 0.8, 1.0)
        fast = norros_overflow_probability(5.0, 1.0, 2.0, 0.8, 1.0)
        assert fast < slow

    def test_requires_stability(self):
        with pytest.raises(ValueError, match="stable"):
            norros_overflow_probability(1.0, 2.0, 1.5, 0.8, 1.0)


class TestParameterMatching:
    def test_variance_matched_at_horizon(self, small_source):
        horizon = 2.0
        mean, hurst, a = fbm_parameters_from_source(small_source, horizon)
        assert mean == pytest.approx(small_source.mean_rate)
        assert hurst == pytest.approx(small_source.hurst)
        fbm_variance = a * mean * horizon ** (2.0 * hurst)
        assert fbm_variance == pytest.approx(
            small_source.cumulative_arrival_variance(horizon), rel=1e-9
        )

    def test_overflow_upper_bounds_finite_buffer_loss_shape(self, small_source):
        """Footnote 2: infinite-buffer overflow tracks above finite-buffer loss."""
        from repro.core.solver import FluidQueue, SolverConfig

        service_rate = 1.4
        mean, hurst, a = fbm_parameters_from_source(small_source, horizon=1.0)
        for buffer_size in (0.5, 1.0, 2.0):
            loss = FluidQueue(
                source=small_source, service_rate=service_rate, buffer_size=buffer_size
            ).loss_rate(SolverConfig(relative_gap=0.3)).estimate
            overflow = float(
                norros_overflow_probability(buffer_size, mean, service_rate, hurst, a)
            )
            # The Gaussian approximation is crude for a 2-level marginal;
            # require only the qualitative upper-bound/bigger-is-smaller shape.
            assert overflow >= loss * 0.5
