"""Property-based tests for the MMFQ spectral solver on random chains."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mmfq import MarkovFluidModel, mmfq_loss_rate, mmfq_overflow_probability


@st.composite
def random_models(draw) -> MarkovFluidModel:
    """Small irreducible CTMCs with distinct non-negative rates."""
    size = draw(st.integers(min_value=2, max_value=5))
    raw = np.array(
        [
            [draw(st.floats(min_value=0.05, max_value=3.0)) for _ in range(size)]
            for _ in range(size)
        ]
    )
    generator = raw.copy()
    np.fill_diagonal(generator, 0.0)
    np.fill_diagonal(generator, -generator.sum(axis=1))
    increments = [draw(st.floats(min_value=0.1, max_value=2.0)) for _ in range(size)]
    rates = np.concatenate([[0.0], np.cumsum(increments)])[:size]
    return MarkovFluidModel(generator=generator, rates=rates)


class TestMmfqInvariants:
    @given(random_models(), st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_loss_is_probability_and_monotone_in_buffer(self, model, buffer_size):
        pi = model.stationary()
        assert pi.sum() == pytest.approx(1.0, abs=1e-8)
        # Service strictly inside (trough, peak) so both state classes exist.
        service_rate = 0.5 * (model.rates[0] + model.rates[-1])
        if service_rate <= 0.0:
            return
        small = mmfq_loss_rate(model, service_rate, buffer_size)
        large = mmfq_loss_rate(model, service_rate, buffer_size * 2.0)
        assert 0.0 <= large <= small + 1e-6 <= 1.0 + 1e-6

    @given(random_models())
    @settings(max_examples=30, deadline=None)
    def test_zero_buffer_matches_stationary_excess(self, model):
        service_rate = 0.5 * (model.rates[0] + model.rates[-1])
        if service_rate <= 0.0:
            return
        loss = mmfq_loss_rate(model, service_rate, 0.0)
        pi = model.stationary()
        excess = float(pi @ np.maximum(model.rates - service_rate, 0.0))
        assert loss == pytest.approx(excess / model.mean_rate, rel=1e-6)

    @given(random_models())
    @settings(max_examples=20, deadline=None)
    def test_overflow_probability_decreasing(self, model):
        service_rate = model.mean_rate * 1.3 + 1e-3
        if service_rate >= model.rates[-1]:
            return  # all states are down-states: trivial
        levels = np.array([0.2, 1.0, 3.0])
        overflow = mmfq_overflow_probability(model, service_rate, levels)
        assert np.all(np.diff(overflow) <= 1e-9)
        assert np.all((overflow >= 0.0) & (overflow <= 1.0))

    @given(random_models())
    @settings(max_examples=20, deadline=None)
    def test_covariance_at_zero_is_variance(self, model):
        pi = model.stationary()
        variance = float(pi @ model.rates**2) - float(pi @ model.rates) ** 2
        value = float(model.rate_autocovariance(np.array([0.0]))[0])
        assert value == pytest.approx(variance, rel=1e-6, abs=1e-9)
