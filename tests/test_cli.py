"""Tests for the repro-lrd command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch, tmp_path):
    """Keep CLI runs from touching the user's real solve cache."""
    monkeypatch.setenv("REPRO_LRD_CACHE_DIR", str(tmp_path / "cli-cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.hurst == 0.8
        assert args.utilization == 0.8

    def test_engine_flag_defaults(self):
        for command in (["figure", "4"], ["solve"]):
            args = build_parser().parse_args(command)
            assert args.jobs == 1
            assert args.no_cache is False
            assert args.cache_dir is None

    def test_engine_flags_parsed(self):
        args = build_parser().parse_args(
            ["figure", "4", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.batch_size == 16
        assert args.batch_delay == 0.02
        assert args.max_queue == 256
        assert args.timeout == 30.0
        assert args.jobs == 1

    def test_serve_flags_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--batch-size", "8",
             "--batch-delay", "0.05", "--max-queue", "64", "--timeout", "5"]
        )
        assert args.port == 0
        assert args.jobs == 4
        assert args.batch_size == 8
        assert args.max_queue == 64

    def test_netsim_defaults(self):
        args = build_parser().parse_args(["netsim", "tandem"])
        assert args.preset == "tandem"
        assert args.hops == 2
        assert args.sources == 8
        assert args.utilizations is None and args.buffers is None
        assert args.duration == 200.0
        assert args.warmup == 20.0
        assert args.seed == 0
        assert args.hurst == 0.8
        assert args.detail is False

    def test_netsim_flags_parsed(self):
        args = build_parser().parse_args(
            ["netsim", "mux", "--sources", "4", "--utilization", "0.8",
             "--utilization", "0.95", "--buffer", "0.2", "--duration", "50",
             "--warmup", "5", "--seed", "7", "--detail"]
        )
        assert args.preset == "mux"
        assert args.sources == 4
        assert args.utilizations == [0.8, 0.95]
        assert args.buffers == [0.2]
        assert args.detail is True

    def test_netsim_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["netsim", "ring"])

    def test_cache_actions_are_exclusive(self):
        args = build_parser().parse_args(["cache", "--stats"])
        assert args.stats and not args.compact
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "--stats", "--compact"])


class TestCommands:
    def test_solve_prints_result(self, capsys):
        code = main(["solve", "--hurst", "0.7", "--cutoff", "2.0", "--buffer", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss ~" in out

    def test_horizon_prints_estimates(self, capsys):
        code = main(["horizon", "--hurst", "0.75", "--buffer", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "eq26_horizon_s" in out
        assert "norros_horizon_s" in out

    def test_trace_mtv(self, capsys):
        code = main(["trace", "mtv", "--bins", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_epoch_s" in out
        assert "alpha" in out

    def test_trace_bellcore(self, capsys):
        code = main(["trace", "bellcore", "--bins", "1024"])
        assert code == 0
        assert "theta" in capsys.readouterr().out

    def test_figure_2_quick(self, capsys):
        code = main(["figure", "2", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "n=  5" in out or "n=5" in out.replace(" ", "")

    def test_figure_3_quick_with_out(self, capsys, tmp_path):
        target = tmp_path / "fig3.txt"
        code = main(["figure", "3", "--quick", "--out", str(target)])
        assert code == 0
        assert target.exists()
        assert "MTV marginal" in target.read_text()

    def test_figure_6_quick(self, capsys):
        code = main(["figure", "6", "--quick"])
        assert code == 0
        assert "shuffling" in capsys.readouterr().out

    def test_list(self, capsys):
        code = main(["list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure  2" in out
        assert "figure 14" in out
        assert "correlation-horizon scaling" in out

    def test_solve_warm_cache_replays_without_iterations(self, capsys, tmp_path):
        argv = ["solve", "--hurst", "0.7", "--cutoff", "2.0", "--buffer", "0.3",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "1 cells, 0 cache hits" in cold.err

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "1 cells, 1 cache hits" in warm.err
        assert "0 solver iterations" in warm.err
        # Identical numbers either way.
        assert warm.out == cold.out

    def test_cache_dir_at_a_file_fails_cleanly(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.touch()
        with pytest.raises(SystemExit, match="not a directory"):
            main(["solve", "--buffer", "0.2", "--cache-dir", str(target)])

    def test_solve_no_cache_writes_nothing(self, capsys, tmp_path):
        code = main(["solve", "--buffer", "0.3", "--no-cache",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert not (tmp_path / "solve_cache.jsonl").exists()

    def test_dimension(self, capsys):
        code = main(["dimension", "--target-loss", "1e-3", "--buffer", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "effective_bandwidth" in out
        assert "achievable_utilization" in out

    def test_dimension_with_streams(self, capsys):
        code = main(
            ["dimension", "--target-loss", "1e-2", "--buffer", "0.2", "--streams", "4"]
        )
        assert code == 0
        assert "Multiplexing gain" in capsys.readouterr().out

    def test_cache_stats_on_populated_cache(self, capsys, tmp_path):
        assert main(["solve", "--hurst", "0.7", "--cutoff", "2.0", "--buffer", "0.3",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "--stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Solve cache" in out
        assert "entries" in out
        assert "stale_lines" in out

    def test_cache_default_action_is_stats(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries" in capsys.readouterr().out

    def test_cache_compact(self, capsys, tmp_path):
        from repro.core.results import LossRateResult
        from repro.exec import SolveCache

        cache = SolveCache(tmp_path)
        result = LossRateResult(lower=0.1, upper=0.2, iterations=8, bins=32,
                                converged=True, negligible=False)
        cache.put("k1", result)
        line = cache.path.read_text()
        cache.path.write_text(line * 4)  # three stale duplicates
        assert main(["cache", "--compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 -> 1 lines" in out
        assert len(SolveCache(tmp_path)) == 1

    def test_netsim_tandem_prints_table(self, capsys):
        code = main(["netsim", "tandem", "--utilization", "0.9",
                     "--buffer", "0.1", "--duration", "20", "--warmup", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Tandem preset" in captured.out
        assert "loss_rate" in captured.out
        assert "events/s" in captured.err

    def test_netsim_mux_detail_and_out(self, capsys, tmp_path):
        target = tmp_path / "mux.txt"
        code = main(["netsim", "mux", "--sources", "3", "--utilization", "0.9",
                     "--buffer", "0.1", "--duration", "20", "--warmup", "2",
                     "--detail", "--out", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Multiplexer preset" in out
        assert "queue.loss_rate" in out  # per-node detail block
        assert target.exists()
        assert "Multiplexer preset" in target.read_text()

    def test_cache_dir_at_a_file_fails_cleanly_for_cache_cmd(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.touch()
        with pytest.raises(SystemExit, match="not a directory"):
            main(["cache", "--stats", "--cache-dir", str(target)])
