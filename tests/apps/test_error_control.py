"""Tests for the ARQ-vs-FEC error-control study (paper Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.error_control import (
    arq_retransmission_overhead,
    compare_error_control,
    fec_residual_loss,
    loss_run_lengths,
    packet_loss_series,
)


class TestLossRunLengths:
    def test_basic(self):
        flags = np.array([0, 1, 1, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        np.testing.assert_array_equal(loss_run_lengths(flags), [2, 1, 3])

    def test_no_losses(self):
        assert loss_run_lengths(np.zeros(10, dtype=bool)).size == 0

    def test_all_losses(self):
        np.testing.assert_array_equal(loss_run_lengths(np.ones(5, dtype=bool)), [5])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            loss_run_lengths(np.zeros((2, 2), dtype=bool))


class TestFec:
    def test_recovers_sparse_losses(self):
        # One loss per 8-packet block, parity 2: everything recovered.
        flags = np.zeros(64, dtype=bool)
        flags[::8] = True
        assert fec_residual_loss(flags, block_length=8, parity=2) == 0.0

    def test_burst_defeats_parity(self):
        # A 4-loss burst in one block with parity 2: all four stay lost.
        flags = np.zeros(16, dtype=bool)
        flags[0:4] = True
        assert fec_residual_loss(flags, block_length=8, parity=2) == pytest.approx(4 / 16)

    def test_parity_zero_recovers_nothing(self):
        flags = np.zeros(8, dtype=bool)
        flags[3] = True
        assert fec_residual_loss(flags, block_length=8, parity=0) == pytest.approx(1 / 8)

    def test_validation(self):
        flags = np.zeros(8, dtype=bool)
        with pytest.raises(ValueError, match="parity"):
            fec_residual_loss(flags, block_length=4, parity=4)
        with pytest.raises(ValueError, match="block_length"):
            fec_residual_loss(flags, block_length=0, parity=0)
        with pytest.raises(ValueError, match="shorter"):
            fec_residual_loss(flags, block_length=100, parity=1)

    def test_bursty_worse_than_spread_at_equal_rate(self, rng):
        # Same loss count, different arrangement: bursts defeat FEC.
        n = 4096
        spread = np.zeros(n, dtype=bool)
        spread[::16] = True
        bursty = np.zeros(n, dtype=bool)
        starts = rng.choice(n // 64, size=n // (16 * 4), replace=False) * 64
        for s in starts:
            bursty[s : s + 4] = True
        assert abs(bursty.mean() - spread.mean()) < 0.02
        assert fec_residual_loss(bursty, 16, 2) > fec_residual_loss(spread, 16, 2)


class TestArq:
    def test_burstiness_amortizes_rounds(self):
        n = 64
        spread = np.zeros(n, dtype=bool)
        spread[::4] = True  # 16 isolated losses -> 16 rounds
        bursty = np.zeros(n, dtype=bool)
        bursty[0:16] = True  # 16 losses in one burst -> 1 round
        assert arq_retransmission_overhead(bursty) < arq_retransmission_overhead(spread)

    def test_zero_when_lossless(self):
        assert arq_retransmission_overhead(np.zeros(10, dtype=bool)) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            arq_retransmission_overhead(np.array([], dtype=bool))


class TestPacketLossSeries:
    def test_shape_and_rate(self, small_source, rng):
        losses = packet_loss_series(
            small_source, service_rate=1.1, buffer_size=0.05, n_packets=40_000, rng=rng
        )
        assert losses.shape == (40_000,)
        assert 0.0 < losses.mean() < 0.5

    def test_lossless_when_service_dominates(self, small_source, rng):
        losses = packet_loss_series(
            small_source, service_rate=3.0, buffer_size=0.5, n_packets=5_000, rng=rng
        )
        assert losses.sum() == 0

    def test_validation(self, small_source, rng):
        with pytest.raises(ValueError, match="n_packets"):
            packet_loss_series(small_source, 1.1, 0.1, 0, rng)


class TestCompare:
    def test_correlation_hurts_fec_not_arq(self, small_source, rng):
        comparison = compare_error_control(
            small_source,
            utilization=0.9,
            normalized_buffer=0.05,
            cutoffs=np.array([0.1, 10.0]),
            rng=rng,
            n_packets=120_000,
        )
        # Longer correlation -> longer bursts.
        assert comparison.mean_burst[1] >= comparison.mean_burst[0]
        # FEC's *recovery fraction* degrades with correlation.
        recovery = 1.0 - comparison.fec_residual / np.maximum(comparison.raw_loss, 1e-12)
        assert recovery[1] <= recovery[0] + 0.05
        # ARQ rounds *per lost packet* improve (bursts amortize).
        rounds_per_loss = comparison.arq_overhead / np.maximum(comparison.raw_loss, 1e-12)
        assert rounds_per_loss[1] <= rounds_per_loss[0] + 0.05
