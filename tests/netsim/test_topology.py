"""Topology validation and the deterministic topological order."""

from __future__ import annotations

import pytest

from repro.netsim import (
    Flow,
    MuxNode,
    PriorityNode,
    QueueNode,
    SegmentSource,
    SinkNode,
    Topology,
)

SRC = SegmentSource(durations=(1.0,), rates=(1.0,))


def queue(name: str) -> QueueNode:
    return QueueNode(name, service_rate=1.0, buffer=1.0)


def test_valid_topology_orders_nodes_topologically():
    topo = Topology(
        nodes=(SinkNode("out"), queue("b"), queue("a"), MuxNode("m")),
        links=(("a", "m"), ("b", "m"), ("m", "out")),
        flows=(Flow("f", SRC, route=("a", "m", "out")),),
    )
    assert topo.order.index("a") < topo.order.index("m")
    assert topo.order.index("b") < topo.order.index("m")
    assert topo.order.index("m") < topo.order.index("out")
    assert set(topo.node_by_name) == {"a", "b", "m", "out"}


def test_order_ties_follow_declaration_order():
    topo = Topology(
        nodes=(queue("z"), queue("a"), SinkNode("out")),
        links=(("z", "out"), ("a", "out")),
        flows=(),
    )
    assert topo.order == ("z", "a", "out")  # declaration order, not alphabetical


def test_node_validation():
    with pytest.raises(ValueError):
        QueueNode("q", service_rate=0.0, buffer=1.0)
    with pytest.raises(ValueError):
        QueueNode("q", service_rate=1.0, buffer=-1.0)
    with pytest.raises(ValueError):
        PriorityNode("", service_rate=1.0, buffer=1.0)


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError, match="unique"):
        Topology(nodes=(queue("q"), queue("q")), links=(), flows=())


def test_duplicate_flow_names_rejected():
    with pytest.raises(ValueError, match="unique"):
        Topology(
            nodes=(queue("q"), SinkNode("out")),
            links=(("q", "out"),),
            flows=(
                Flow("f", SRC, route=("q", "out")),
                Flow("f", SRC, route=("q", "out")),
            ),
        )


def test_link_validation():
    with pytest.raises(ValueError, match="unknown"):
        Topology(nodes=(queue("q"),), links=(("q", "ghost"),), flows=())
    with pytest.raises(ValueError, match="self-link"):
        Topology(nodes=(queue("q"),), links=(("q", "q"),), flows=())
    with pytest.raises(ValueError, match="duplicate"):
        Topology(
            nodes=(queue("q"), SinkNode("out")),
            links=(("q", "out"), ("q", "out")),
            flows=(),
        )
    with pytest.raises(ValueError, match="sink"):
        Topology(
            nodes=(queue("q"), SinkNode("out")),
            links=(("out", "q"),),
            flows=(),
        )


def test_route_validation():
    nodes = (queue("a"), queue("b"), SinkNode("out"))
    links = (("a", "b"), ("b", "out"))
    with pytest.raises(ValueError, match="end at a sink"):
        Topology(nodes=nodes, links=links, flows=(Flow("f", SRC, route=("a", "b")),))
    with pytest.raises(ValueError, match="not a link"):
        Topology(nodes=nodes, links=links, flows=(Flow("f", SRC, route=("a", "out")),))
    with pytest.raises(ValueError, match="unknown"):
        Topology(nodes=nodes, links=links, flows=(Flow("f", SRC, route=("ghost", "out")),))
    with pytest.raises(ValueError, match="mid-route"):
        # The mid-route sink check fires before hop-link checking.
        Topology(
            nodes=nodes + (SinkNode("out2"),),
            links=links,
            flows=(Flow("f", SRC, route=("a", "out", "out2")),),
        )


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        Topology(
            nodes=(queue("a"), queue("b")),
            links=(("a", "b"), ("b", "a")),
            flows=(),
        )


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow("", SRC, route=("q",))
    with pytest.raises(ValueError):
        Flow("f", SRC, route=())
    with pytest.raises(ValueError):
        Flow("f", SRC, route=("q",), priority=-1)


def test_describe_summarizes_kinds():
    topo = Topology(
        nodes=(MuxNode("m"), queue("q"), SinkNode("out")),
        links=(("m", "q"), ("q", "out")),
        flows=(Flow("f", SRC, route=("m", "q", "out")),),
    )
    text = topo.describe()
    assert "3 nodes" in text and "1 queue" in text and "1 flows" in text
