"""Preset sweeps: topology shape, grid coverage, telemetry integration."""

from __future__ import annotations

import pytest

from repro.exec.telemetry import SweepTelemetry
from repro.netsim import (
    MuxNode,
    QueueNode,
    SinkNode,
    multiplexer_preset,
    multiplexer_topology,
    tandem_preset,
    tandem_topology,
)


class TestTopologies:
    def test_tandem_shape(self):
        topo = tandem_topology(utilization=0.9, normalized_buffer=0.1, hops=3)
        kinds = [node.kind for node in topo.nodes]
        assert kinds == ["queue", "queue", "queue", "sink"]
        assert len(topo.flows) == 1
        assert topo.flows[0].route == ("hop1", "hop2", "hop3", "sink")
        queue = topo.nodes[0]
        assert isinstance(queue, QueueNode)
        # Normalized-buffer convention: B = b * c.
        assert queue.buffer == pytest.approx(0.1 * queue.service_rate)

    def test_tandem_service_covers_offered_load(self):
        topo = tandem_topology(utilization=0.8, normalized_buffer=0.1)
        queue = topo.nodes[0]
        source = topo.flows[0].source
        assert queue.service_rate == pytest.approx(source.mean_rate / 0.8)

    def test_mux_shape(self):
        topo = multiplexer_topology(utilization=0.9, normalized_buffer=0.1, sources=5)
        assert [type(node) for node in topo.nodes] == [MuxNode, QueueNode, SinkNode]
        assert len(topo.flows) == 5
        queue = topo.nodes[1]
        per_flow = topo.flows[0].source.mean_rate
        assert queue.service_rate == pytest.approx(5 * per_flow / 0.9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            tandem_topology(utilization=0.9, normalized_buffer=0.1, hops=0)
        with pytest.raises(ValueError):
            multiplexer_topology(utilization=0.9, normalized_buffer=0.1, sources=0)


class TestPresetSweeps:
    def test_tandem_preset_covers_grid_and_records_telemetry(self):
        telemetry = SweepTelemetry()
        report = tandem_preset(
            utilizations=(0.7, 0.9), buffers=(0.1, 0.5),
            duration=20.0, warmup=2.0, telemetry=telemetry,
        )
        assert len(report.cells) == 4
        assert telemetry.total_cells == 4
        assert telemetry.cache_misses == 4 and telemetry.cache_hits == 0
        for cell, record in zip(report.cells, telemetry.cells):
            assert record.iterations == cell.result.events_processed
            assert record.bins == 3  # 2 hops + sink
            assert record.converged and not record.cached
        # Higher utilization at the same buffer must not lose less.
        by_cell = {
            (cell.utilization, cell.normalized_buffer):
                cell.result.node_stats["hop1"].loss_rate
            for cell in report.cells
        }
        assert by_cell[(0.9, 0.1)] >= by_cell[(0.7, 0.1)]

    def test_mux_preset_reports_per_node_stats(self):
        report = multiplexer_preset(
            utilizations=(0.9,), buffers=(0.1,), sources=4,
            duration=20.0, warmup=2.0,
        )
        (cell,) = report.cells
        stats = cell.result.node_stats
        assert set(stats) == {"mux", "queue", "sink"}
        assert stats["mux"].lost_work == 0.0
        assert len(cell.result.flow_stats) == 4
        assert report.bottleneck(cell) == "queue"

    def test_format_table_renders_every_cell(self):
        report = tandem_preset(
            utilizations=(0.9,), buffers=(0.1, 0.5), duration=10.0, warmup=1.0,
        )
        text = report.format_table()
        assert "Tandem preset" in text
        assert "loss_rate" in text and "delay_s" in text
        # Header + separator + one row per cell.
        assert len(text.splitlines()) == 3 + len(report.cells)
