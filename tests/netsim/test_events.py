"""Event-loop ordering: the (time, kind, seq) key is total and deterministic."""

from __future__ import annotations

from repro.netsim.events import BOUNDARY, CONTROL, RATE_CHANGE, Event, EventLoop


def test_pops_in_time_order():
    loop = EventLoop()
    loop.schedule(3.0, Event(RATE_CHANGE, flow=0, tag="c"))
    loop.schedule(1.0, Event(RATE_CHANGE, flow=0, tag="a"))
    loop.schedule(2.0, Event(RATE_CHANGE, flow=0, tag="b"))
    tags = [loop.pop()[2].tag for _ in range(3)]
    assert tags == ["a", "b", "c"]


def test_kind_priority_breaks_time_ties():
    """At one instant: rate changes, then boundaries, then control events."""
    loop = EventLoop()
    loop.schedule(1.0, Event(CONTROL, tag="end"))
    loop.schedule(1.0, Event(BOUNDARY, node=0, tag="full"))
    loop.schedule(1.0, Event(RATE_CHANGE, flow=0, tag="rate"))
    kinds = [loop.pop()[2].kind for _ in range(3)]
    assert kinds == [RATE_CHANGE, BOUNDARY, CONTROL]


def test_schedule_order_breaks_full_ties():
    loop = EventLoop()
    loop.schedule(1.0, Event(RATE_CHANGE, flow=0, tag="first"))
    loop.schedule(1.0, Event(RATE_CHANGE, flow=1, tag="second"))
    loop.schedule(1.0, Event(RATE_CHANGE, flow=2, tag="third"))
    tags = [loop.pop()[2].tag for _ in range(3)]
    assert tags == ["first", "second", "third"]


def test_seq_is_monotone_across_pops():
    loop = EventLoop()
    for _ in range(5):
        loop.schedule(1.0, Event(RATE_CHANGE, flow=0))
    seqs = [loop.pop()[1] for _ in range(5)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5


def test_len_peek_and_bool():
    loop = EventLoop()
    assert not loop
    assert len(loop) == 0
    loop.schedule(2.5, Event(CONTROL, tag="end"))
    assert loop
    assert len(loop) == 1
    assert loop.peek_time() == 2.5
    loop.pop()
    assert not loop
