"""Source adapters: every traffic generator family as piecewise-constant rates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.sources import RateSource, RenewalSource, SegmentSource, TraceSource
from repro.traffic import synthesize_mtv_trace


def test_segment_source_validates():
    with pytest.raises(ValueError):
        SegmentSource(durations=(), rates=())
    with pytest.raises(ValueError):
        SegmentSource(durations=(1.0,), rates=(1.0, 2.0))
    with pytest.raises(ValueError):
        SegmentSource(durations=(0.0,), rates=(1.0,))
    with pytest.raises(ValueError):
        SegmentSource(durations=(1.0,), rates=(-0.5,))


def test_segment_source_mean_rate_is_time_weighted():
    source = SegmentSource(durations=(1.0, 3.0), rates=(4.0, 0.0))
    assert source.mean_rate == pytest.approx(1.0)
    assert source.total_time == pytest.approx(4.0)
    rng = np.random.default_rng(0)
    assert list(source.segments(rng)) == [(1.0, 4.0), (3.0, 0.0)]


def test_renewal_source_streams_across_chunks(small_source):
    adapter = RenewalSource(small_source, chunk=4)
    assert adapter.mean_rate == pytest.approx(small_source.mean_rate)
    rng = np.random.default_rng(3)
    stream = adapter.segments(rng)
    segments = [next(stream) for _ in range(10)]  # > 2 chunks deep
    assert all(duration > 0.0 for duration, _ in segments)
    assert all(rate >= 0.0 for _, rate in segments)
    rates = {rate for _, rate in segments}
    assert rates <= set(np.asarray(small_source.marginal.rates).tolist())


def test_renewal_source_rejects_bad_chunk(small_source):
    with pytest.raises(ValueError):
        RenewalSource(small_source, chunk=0)


def test_trace_source_validates():
    with pytest.raises(ValueError):
        TraceSource(rates=(), bin_width=0.1)
    with pytest.raises(ValueError):
        TraceSource(rates=(1.0,), bin_width=0.0)
    with pytest.raises(ValueError):
        TraceSource(rates=(-1.0,), bin_width=0.1)


def test_trace_source_from_array_clips_negative_rates():
    source = TraceSource.from_array(np.array([1.0, -2.0, 3.0]), bin_width=0.5)
    assert source.rates == (1.0, 0.0, 3.0)
    assert source.total_time == pytest.approx(1.5)
    rng = np.random.default_rng(0)
    assert list(source.segments(rng)) == [(0.5, 1.0), (0.5, 0.0), (0.5, 3.0)]


@pytest.mark.parametrize("family", ["fgn", "farima"])
def test_gaussian_trace_sources_are_seeded_values(family):
    build = getattr(TraceSource, family)
    kwargs = dict(duration=5.0, bin_width=0.1, hurst=0.8, mean=1.0, std=0.3)
    first = build(seed=11, **kwargs)
    second = build(seed=11, **kwargs)
    other = build(seed=12, **kwargs)
    assert first.rates == second.rates  # a TraceSource is a value
    assert first.rates != other.rates
    assert len(first.rates) == 50
    assert min(first.rates) >= 0.0  # clipped at zero


def test_onoff_aggregate_trace_source():
    source = TraceSource.onoff_aggregate(
        duration=4.0, bin_width=0.1, seed=5, sources=4, peak_rate=1.0
    )
    assert len(source.rates) == 40
    assert 0.0 <= min(source.rates)
    assert max(source.rates) <= 4.0 + 1e-9  # at most all sources on


def test_mginf_trace_source():
    source = TraceSource.mginf(
        duration=4.0, bin_width=0.1, seed=5, arrival_rate=5.0, rate_per_session=2.0
    )
    assert len(source.rates) == 40
    assert all(rate >= 0.0 for rate in source.rates)
    doubled = TraceSource.mginf(
        duration=4.0, bin_width=0.1, seed=5, arrival_rate=5.0, rate_per_session=4.0
    )
    # rate_per_session scales the identical seeded session path linearly.
    assert doubled.rates == tuple(rate * 2.0 for rate in source.rates)


def test_from_trace_wraps_synthetic_traces():
    trace = synthesize_mtv_trace(n_frames=256)
    source = TraceSource.from_trace(trace)
    assert source.bin_width == pytest.approx(trace.bin_width)
    assert len(source.rates) == trace.rates.size
    assert source.mean_rate == pytest.approx(float(np.mean(trace.rates)))


def test_base_interface_is_abstract():
    with pytest.raises(NotImplementedError):
        RateSource().segments(np.random.default_rng(0))
