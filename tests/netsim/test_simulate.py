"""Engine semantics: hand calculations, conservation laws, Eq. 9 equivalence."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.netsim import (
    Flow,
    MuxNode,
    PriorityNode,
    QueueNode,
    SegmentSource,
    SinkNode,
    Topology,
    simulate,
)
from repro.queueing.fluid_sim import simulate_source_queue


def single_queue(source, service_rate=1.0, buffer=0.5) -> Topology:
    return Topology(
        nodes=(QueueNode("q", service_rate=service_rate, buffer=buffer), SinkNode("out")),
        links=(("q", "out"),),
        flows=(Flow("f", source, route=("q", "out")),),
    )


class TestHandCalculation:
    """Rate 2 for 1 s into (c=1, B=0.5), then silence: every number is exact."""

    @pytest.fixture()
    def result(self):
        source = SegmentSource(durations=(1.0, 1.0), rates=(2.0, 0.0))
        return simulate(single_queue(source), duration=2.0, record_trace=True)

    def test_work_accounting(self, result):
        stats = result.node_stats["q"]
        assert stats.arrived_work == pytest.approx(2.0)
        # Fills at drift 1 for 0.5 s, then overflows 1/s for 0.5 s.
        assert stats.lost_work == pytest.approx(0.5)
        assert stats.served_work == pytest.approx(1.5)
        assert stats.loss_rate == pytest.approx(0.25)

    def test_boundary_fractions(self, result):
        stats = result.node_stats["q"]
        assert stats.full_fraction == pytest.approx(0.25)  # full on [0.5, 1.0]
        assert stats.empty_fraction == pytest.approx(0.25)  # empty on [1.5, 2.0]

    def test_occupancy_and_delay(self, result):
        stats = result.node_stats["q"]
        # Integral: fill triangle + full plateau + drain triangle
        #         = 0.125 + 0.25 + 0.125 = 0.5
        assert stats.mean_occupancy == pytest.approx(0.5 / 2.0)
        assert stats.mean_delay == pytest.approx(0.5 / 1.5)

    def test_flow_stats_match_node(self, result):
        flow = result.flow_stats["f"]
        assert flow.offered_work == pytest.approx(2.0)
        assert flow.delivered_work == pytest.approx(1.5)
        assert flow.lost_work == pytest.approx(0.5)
        assert flow.loss_rate == pytest.approx(0.25)

    def test_event_trace(self, result):
        tags = [(round(t, 9), tag) for t, tag, _, _ in result.event_trace]
        assert tags == [
            (0.0, "rate"),
            (0.5, "full"),
            (1.0, "rate"),
            (1.5, "empty"),
            (2.0, "end"),
        ]


class TestConservation:
    def test_work_is_conserved_at_every_queue(self, small_source, rng):
        path = small_source.sample_path(600, rng)
        source = SegmentSource(tuple(path.durations.tolist()), tuple(path.rates.tolist()))
        result = simulate(single_queue(source, service_rate=1.1, buffer=0.2),
                          duration=float(sum(source.durations)))
        stats = result.node_stats["q"]
        # arrived = served + lost + what is still in the buffer; the final
        # occupancy is bounded by B, so check the balance within B.
        balance = stats.arrived_work - stats.served_work - stats.lost_work
        assert 0.0 <= balance <= 0.2 + 1e-9
        assert result.flow_stats["f"].delivered_work == pytest.approx(
            stats.served_work
        )

    def test_infinite_buffer_never_loses(self, small_source, rng):
        path = small_source.sample_path(400, rng)
        source = SegmentSource(tuple(path.durations.tolist()), tuple(path.rates.tolist()))
        result = simulate(
            single_queue(source, service_rate=1.05, buffer=math.inf),
            duration=float(sum(source.durations)),
        )
        assert result.node_stats["q"].lost_work == 0.0
        assert result.node_stats["q"].full_fraction == 0.0

    def test_zero_buffer_is_pure_clipping(self):
        source = SegmentSource(durations=(1.0, 1.0), rates=(3.0, 0.5))
        result = simulate(single_queue(source, service_rate=1.0, buffer=0.0),
                          duration=2.0)
        stats = result.node_stats["q"]
        assert stats.lost_work == pytest.approx(2.0)  # (3 - 1) * 1 s
        assert stats.served_work == pytest.approx(1.5)
        assert stats.mean_occupancy == pytest.approx(0.0)


class TestSingleQueueEquivalence:
    """One netsim queue on a sampled path == the Eq. 9 recursion, exactly.

    Within one constant-rate interval the drift sign is constant, so
    clipping once per interval (Eq. 9) accumulates the same loss as
    clipping continuously in time (netsim) — the identity the verify
    oracle builds on, here checked to float precision on a shared path.
    """

    @pytest.mark.parametrize("utilization,normalized_buffer", [
        (0.9, 0.1), (0.8, 0.5), (0.95, 0.05),
    ])
    def test_loss_matches_recursion(self, utilization, normalized_buffer):
        source = CutoffFluidSource(
            marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
            interarrival=TruncatedPareto(theta=0.05, alpha=1.4, cutoff=2.0),
        )
        service_rate = source.mean_rate / utilization
        buffer_size = normalized_buffer * service_rate
        intervals = 3000
        path = source.sample_path(intervals, np.random.default_rng(99))
        segment = SegmentSource(
            tuple(path.durations.tolist()), tuple(path.rates.tolist())
        )
        result = simulate(
            single_queue(segment, service_rate=service_rate, buffer=buffer_size),
            duration=float(sum(segment.durations)),
        )
        reference = simulate_source_queue(
            source, service_rate, buffer_size, intervals, np.random.default_rng(99)
        )
        assert result.node_stats["q"].loss_rate == pytest.approx(
            reference.loss_rate, rel=1e-9
        )
        assert result.node_stats["q"].arrived_work == pytest.approx(
            reference.arrived_work, rel=1e-9
        )


class TestTandem:
    def test_equal_service_second_hop_is_lossless(self, small_source, rng):
        """Hop 1 caps its output at c, so hop 2 (same c) never overflows."""
        path = small_source.sample_path(500, rng)
        source = SegmentSource(tuple(path.durations.tolist()), tuple(path.rates.tolist()))
        service = small_source.mean_rate / 0.9
        topo = Topology(
            nodes=(
                QueueNode("h1", service_rate=service, buffer=0.1 * service),
                QueueNode("h2", service_rate=service, buffer=0.1 * service),
                SinkNode("out"),
            ),
            links=(("h1", "h2"), ("h2", "out")),
            flows=(Flow("f", source, route=("h1", "h2", "out")),),
        )
        result = simulate(topo, duration=float(sum(source.durations)))
        assert result.node_stats["h1"].lost_work > 0.0
        assert result.node_stats["h2"].lost_work == pytest.approx(0.0, abs=1e-12)
        # End-to-end flow loss is exactly hop 1's loss.
        assert result.flow_stats["f"].lost_work == pytest.approx(
            result.node_stats["h1"].lost_work
        )

    def test_slower_second_hop_does_lose(self, small_source, rng):
        path = small_source.sample_path(500, rng)
        source = SegmentSource(tuple(path.durations.tolist()), tuple(path.rates.tolist()))
        service = small_source.mean_rate / 0.9
        topo = Topology(
            nodes=(
                QueueNode("h1", service_rate=service, buffer=0.1 * service),
                QueueNode("h2", service_rate=0.8 * service, buffer=0.05 * service),
                SinkNode("out"),
            ),
            links=(("h1", "h2"), ("h2", "out")),
            flows=(Flow("f", source, route=("h1", "h2", "out")),),
        )
        result = simulate(topo, duration=float(sum(source.durations)))
        assert result.node_stats["h2"].lost_work > 0.0


class TestMux:
    def test_mux_aggregates_flows_losslessly(self):
        on = SegmentSource(durations=(1.0,), rates=(1.0,))
        topo = Topology(
            nodes=(
                MuxNode("m"),
                QueueNode("q", service_rate=3.0, buffer=1.0),
                SinkNode("out"),
            ),
            links=(("m", "q"), ("q", "out")),
            flows=tuple(
                Flow(f"f{i}", on, route=("m", "q", "out")) for i in range(3)
            ),
        )
        result = simulate(topo, duration=2.0)
        mux = result.node_stats["m"]
        # The last segment rate holds to the horizon: 3 flows x rate 1 x 2 s.
        assert mux.arrived_work == pytest.approx(6.0)
        assert mux.lost_work == 0.0
        # Aggregate 3 <= service 3: everything is delivered.
        for i in range(3):
            assert result.flow_stats[f"f{i}"].delivered_work == pytest.approx(2.0)

    def test_overloaded_mux_queue_splits_loss_across_flows(self):
        on = SegmentSource(durations=(2.0,), rates=(1.0,))
        topo = Topology(
            nodes=(
                MuxNode("m"),
                QueueNode("q", service_rate=1.0, buffer=0.0),
                SinkNode("out"),
            ),
            links=(("m", "q"), ("q", "out")),
            flows=tuple(
                Flow(f"f{i}", on, route=("m", "q", "out")) for i in range(2)
            ),
        )
        result = simulate(topo, duration=2.0)
        # Aggregate 2 into service 1 with no buffer: half the work is lost,
        # split evenly across the symmetric flows.
        assert result.node_stats["q"].loss_rate == pytest.approx(0.5)
        for i in range(2):
            assert result.flow_stats[f"f{i}"].loss_rate == pytest.approx(0.5)
            assert result.flow_stats[f"f{i}"].lost_work == pytest.approx(1.0)


class TestPriority:
    def test_strict_class_preempts_service(self):
        heavy = SegmentSource(durations=(2.0,), rates=(1.0,))
        topo = Topology(
            nodes=(PriorityNode("p", service_rate=1.5, buffer=0.0), SinkNode("out")),
            links=(("p", "out"),),
            flows=(
                Flow("gold", heavy, route=("p", "out"), priority=0),
                Flow("bronze", heavy, route=("p", "out"), priority=1),
            ),
        )
        result = simulate(topo, duration=2.0)
        gold = result.flow_stats["gold"]
        bronze = result.flow_stats["bronze"]
        # Class 0 takes 1.0 of the 1.5 service; class 1 gets the 0.5 left.
        assert gold.lost_work == pytest.approx(0.0)
        assert bronze.delivered_work == pytest.approx(1.0)
        assert bronze.lost_work == pytest.approx(1.0)
        assert bronze.loss_rate > gold.loss_rate

    def test_priority_classes_have_private_buffers(self):
        burst = SegmentSource(durations=(1.0, 1.0), rates=(2.0, 0.0))
        steady = SegmentSource(durations=(2.0,), rates=(0.4,))
        topo = Topology(
            nodes=(PriorityNode("p", service_rate=1.0, buffer=0.3), SinkNode("out")),
            links=(("p", "out"),),
            flows=(
                Flow("gold", burst, route=("p", "out"), priority=0),
                Flow("bronze", steady, route=("p", "out"), priority=1),
            ),
        )
        result = simulate(topo, duration=2.0)
        # Gold: rate 2 into service 1, private buffer full at t=0.3, loses
        # 1/s until the burst ends at t=1 -> 0.7; its backlog drains by 1.3.
        assert result.flow_stats["gold"].lost_work == pytest.approx(0.7)
        # Bronze sees zero leftover service until t=1.3: its own 0.3 buffer
        # fills at 0.4 by t=0.75 and overflows 0.4/s until 1.3 -> 0.22.
        assert result.flow_stats["bronze"].lost_work == pytest.approx(0.22)


class TestHarness:
    def test_warmup_discards_transient(self):
        # Rate 2 for 1 s then steady 0.5: with warmup past the burst the
        # measured window sees only the lossless steady phase.
        source = SegmentSource(durations=(1.0, 9.0), rates=(2.0, 0.5))
        lossy = simulate(single_queue(source, service_rate=1.0, buffer=0.5),
                         duration=10.0)
        clean = simulate(single_queue(source, service_rate=1.0, buffer=0.5),
                         duration=8.0, warmup=2.0)
        assert lossy.node_stats["q"].lost_work > 0.0
        assert clean.node_stats["q"].lost_work == pytest.approx(0.0, abs=1e-12)
        assert clean.node_stats["q"].arrived_work == pytest.approx(0.5 * 8.0)

    def test_validates_arguments(self, small_source):
        topo = single_queue(SegmentSource((1.0,), (1.0,)))
        with pytest.raises(ValueError):
            simulate(topo, duration=0.0)
        with pytest.raises(ValueError):
            simulate(topo, duration=1.0, warmup=-1.0)

    def test_result_summary_is_flat_and_finite(self):
        source = SegmentSource(durations=(1.0, 1.0), rates=(2.0, 0.0))
        result = simulate(single_queue(source), duration=2.0)
        summary = result.summary()
        assert summary["events_processed"] >= 4.0
        assert all(np.isfinite(v) for v in summary.values())
        assert "q.loss_rate" in summary and "out.mean_delay_s" in summary

    def test_events_per_second_counter(self):
        source = SegmentSource(durations=(1.0,), rates=(1.0,))
        result = simulate(single_queue(source), duration=1.0)
        assert result.events_processed > 0
        assert result.events_per_second > 0.0
        assert result.event_trace is None  # off unless requested
