"""The tested invariant: same seed + topology => bit-identical runs.

Covers both replication within one process and independence from hash
randomization: the full event trace and every statistic must match bit
for bit across repeated runs and across interpreters launched with
different ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.netsim import (
    Flow,
    MuxNode,
    QueueNode,
    RenewalSource,
    SinkNode,
    Topology,
    multiplexer_topology,
    simulate,
    tandem_topology,
)


def mux_topology(small_source) -> Topology:
    service = 3.0 * small_source.mean_rate / 0.9
    return Topology(
        nodes=(
            MuxNode("mux"),
            QueueNode("queue", service_rate=service, buffer=0.1 * service),
            SinkNode("sink"),
        ),
        links=(("mux", "queue"), ("queue", "sink")),
        flows=tuple(
            Flow(f"f{i}", RenewalSource(small_source), route=("mux", "queue", "sink"))
            for i in range(3)
        ),
    )


def test_same_seed_is_bit_identical(small_source):
    topo = mux_topology(small_source)
    first = simulate(topo, duration=50.0, warmup=5.0, seed=11, record_trace=True)
    second = simulate(topo, duration=50.0, warmup=5.0, seed=11, record_trace=True)
    assert first.event_trace == second.event_trace  # bit-for-bit, no tolerance
    assert first.node_stats == second.node_stats
    assert first.flow_stats == second.flow_stats
    assert first.events_processed == second.events_processed
    assert first.events_stale == second.events_stale


def test_different_seeds_differ(small_source):
    topo = mux_topology(small_source)
    first = simulate(topo, duration=50.0, seed=11, record_trace=True)
    other = simulate(topo, duration=50.0, seed=12, record_trace=True)
    assert first.event_trace != other.event_trace


def test_presets_are_deterministic():
    for build in (tandem_topology, multiplexer_topology):
        topo = build(utilization=0.9, normalized_buffer=0.1)
        first = simulate(topo, duration=30.0, seed=3, record_trace=True)
        second = simulate(topo, duration=30.0, seed=3, record_trace=True)
        assert first.event_trace == second.event_trace
        assert first.node_stats == second.node_stats


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.netsim import multiplexer_topology, simulate

topo = multiplexer_topology(utilization=0.9, normalized_buffer=0.1, sources=3)
result = simulate(topo, duration=40.0, warmup=4.0, seed=7, record_trace=True)
payload = {
    "trace": [[t, tag, target, value] for t, tag, target, value in result.event_trace],
    "stats": {
        name: [s.arrived_work, s.served_work, s.lost_work, s.mean_occupancy]
        for name, s in sorted(result.node_stats.items())
    },
    "events": result.events_processed,
}
json.dump(payload, sys.stdout)
"""


@pytest.mark.slow
def test_trace_is_independent_of_hash_randomization():
    """PYTHONHASHSEED must not leak into the event schedule or the stats."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1] == outputs[2]
    assert outputs[0]["events"] > 0
