"""Tests for the query-service request protocol and latency tracker."""

from __future__ import annotations

import math

import pytest

from repro.serve.protocol import ProtocolError, parse_request, result_payload
from repro.serve.stats import LatencyTracker


class TestParseRequest:
    def test_minimal_loss_request_gets_defaults(self):
        request = parse_request({"kind": "loss"})
        assert request.kind == "loss"
        assert request.hurst == 0.8
        assert request.utilization == 0.8
        assert request.cutoff == math.inf
        assert request.timeout_s is None

    def test_rejects_non_object_bodies(self):
        for body in ([1, 2], "loss", 3, None):
            with pytest.raises(ProtocolError, match="JSON object"):
                parse_request(body)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="'kind'"):
            parse_request({"kind": "solve"})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown field.*hurts"):
            parse_request({"kind": "loss", "hurts": 0.8})

    def test_kind_specific_fields_do_not_leak(self):
        # target_loss belongs to dimension only.
        with pytest.raises(ProtocolError, match="target_loss"):
            parse_request({"kind": "loss", "target_loss": 1e-6})
        assert parse_request(
            {"kind": "dimension", "target_loss": 1e-3}
        ).target_loss == 1e-3

    def test_rejects_out_of_range_values(self):
        for field, value in (
            ("hurst", 0.5), ("hurst", 1.0), ("utilization", 0.0),
            ("utilization", 1.5), ("buffer", 0.0), ("on_probability", 1.0),
            ("mean_interval", -0.1), ("peak", 0.0),
        ):
            with pytest.raises(ProtocolError, match=field):
                parse_request({"kind": "loss", field: value})

    def test_rejects_non_numeric_values(self):
        with pytest.raises(ProtocolError, match="must be a number"):
            parse_request({"kind": "loss", "hurst": "0.8"})
        with pytest.raises(ProtocolError, match="must be a number"):
            parse_request({"kind": "loss", "hurst": True})

    def test_solver_overrides(self):
        request = parse_request(
            {"kind": "loss", "initial_bins": 32, "max_bins": 64, "relative_gap": 0.5}
        )
        config = request.config()
        assert config.initial_bins == 32
        assert config.max_bins == 64
        assert config.relative_gap == 0.5
        assert parse_request({"kind": "loss"}).config() is None

    def test_rejects_bad_solver_overrides(self):
        with pytest.raises(ProtocolError, match="initial_bins"):
            parse_request({"kind": "loss", "initial_bins": 1})
        with pytest.raises(ProtocolError, match="initial_bins"):
            parse_request({"kind": "loss", "initial_bins": 32.5})


class TestRequestIdentity:
    def test_loss_key_is_the_engine_cache_key(self):
        request = parse_request({"kind": "loss", "hurst": 0.7, "cutoff": 2.0})
        assert request.key() == request.task().cache_key()

    def test_identical_requests_share_a_key(self):
        a = parse_request({"kind": "loss", "hurst": 0.7})
        b = parse_request({"kind": "loss", "hurst": 0.7})
        assert a.key() == b.key()

    def test_different_parameters_differ(self):
        base = parse_request({"kind": "loss", "hurst": 0.7})
        other = parse_request({"kind": "loss", "hurst": 0.75})
        assert base.key() != other.key()

    def test_kinds_never_collide(self):
        keys = {
            parse_request({"kind": kind}).key()
            for kind in ("loss", "horizon", "dimension")
        }
        assert len(keys) == 3

    def test_timeout_does_not_change_identity(self):
        a = parse_request({"kind": "loss", "timeout_s": 1.0})
        b = parse_request({"kind": "loss", "timeout_s": 9.0})
        assert a.key() == b.key()

    def test_non_loss_kinds_reject_task(self):
        with pytest.raises(ValueError, match="loss"):
            parse_request({"kind": "horizon"}).task()


class TestResultPayload:
    def test_round_trips_the_result_fields(self):
        request = parse_request(
            {"kind": "loss", "hurst": 0.7, "cutoff": 2.0, "buffer": 0.3,
             "initial_bins": 32, "max_bins": 64, "relative_gap": 0.5}
        )
        result = request.task().run()
        payload = result_payload(result)
        assert payload["lower"] == result.lower
        assert payload["upper"] == result.upper
        assert payload["estimate"] == result.estimate
        assert payload["converged"] is True


class TestLatencyTracker:
    def test_empty_tracker_reports_zero(self):
        tracker = LatencyTracker()
        assert tracker.count == 0
        assert tracker.percentile(0.99) == 0.0
        assert tracker.snapshot()["p50_s"] == 0.0

    def test_percentiles_are_nearest_rank(self):
        tracker = LatencyTracker()
        for value in range(1, 101):  # 0.01 .. 1.00
            tracker.record(value / 100.0)
        assert tracker.percentile(0.50) == pytest.approx(0.50)
        assert tracker.percentile(0.99) == pytest.approx(0.99)
        assert tracker.percentile(1.00) == pytest.approx(1.00)

    def test_window_bounds_memory_but_not_count(self):
        tracker = LatencyTracker(window=8)
        for _ in range(100):
            tracker.record(1.0)
        assert tracker.count == 100
        assert len(tracker._samples) == 8

    def test_negative_durations_clamp_to_zero(self):
        tracker = LatencyTracker()
        tracker.record(-1.0)
        assert tracker.percentile(0.5) == 0.0

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            LatencyTracker().percentile(0.0)
        with pytest.raises(ValueError):
            LatencyTracker(window=0)
