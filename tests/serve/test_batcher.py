"""Tests for size-or-deadline micro-batching and queue admission (asyncio)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serve.batcher import BatcherClosedError, MicroBatcher, QueueFullError


def run(coroutine):
    return asyncio.run(coroutine)


class _Collector:
    """Records dispatched batches; optionally parks inside dispatch."""

    def __init__(self, gated: bool = False) -> None:
        self.batches: list[list[object]] = []
        self.gate = asyncio.Event()
        if not gated:
            self.gate.set()

    async def __call__(self, batch: list[object]) -> None:
        await self.gate.wait()
        self.batches.append(list(batch))

    async def wait_for_batches(self, n: int, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while len(self.batches) < n:
            if time.monotonic() > deadline:
                raise AssertionError(f"saw {len(self.batches)} batches, wanted {n}")
            await asyncio.sleep(0.002)

    @property
    def flat(self) -> list[object]:
        return [item for batch in self.batches for item in batch]


async def _started(collector: _Collector, **kwargs) -> MicroBatcher:
    batcher = MicroBatcher(collector, **kwargs)
    await batcher.start()
    return batcher


class TestTriggers:
    def test_size_trigger_dispatches_a_full_batch(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(
                collector, batch_size=4, batch_delay_s=5.0, max_queue=16
            )
            for item in range(4):
                batcher.submit(item)
            await collector.wait_for_batches(1)
            # Dispatched by size, long before the 5 s deadline.
            assert collector.batches[0] == [0, 1, 2, 3]
            await batcher.close()

        run(scenario())

    def test_deadline_trigger_fires_on_a_half_full_batch(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(
                collector, batch_size=8, batch_delay_s=0.05, max_queue=16
            )
            start = time.monotonic()
            for item in range(4):  # half of batch_size
                batcher.submit(item)
            await collector.wait_for_batches(1)
            elapsed = time.monotonic() - start
            assert collector.batches[0] == [0, 1, 2, 3]
            assert elapsed < 2.0  # deadline, not starvation
            await batcher.close()

        run(scenario())

    def test_arrival_order_is_preserved_across_batches(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(
                collector, batch_size=3, batch_delay_s=0.01, max_queue=64
            )
            for item in range(10):
                batcher.submit(item)
            deadline = time.monotonic() + 5
            while sum(len(b) for b in collector.batches) < 10:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.002)
            assert collector.flat == list(range(10))
            assert max(len(b) for b in collector.batches) <= 3
            await batcher.close()

        run(scenario())


class TestAdmission:
    def test_sheds_when_the_queue_is_full(self):
        async def scenario():
            collector = _Collector(gated=True)
            batcher = await _started(
                collector, batch_size=1, batch_delay_s=0.0, max_queue=2
            )
            batcher.submit("a")  # picked up by the collector, parks on the gate
            deadline = time.monotonic() + 5
            while batcher.depth > 0:  # wait for the collector to take "a"
                assert time.monotonic() < deadline
                await asyncio.sleep(0.002)
            batcher.submit("b")
            batcher.submit("c")
            with pytest.raises(QueueFullError):
                batcher.submit("d")
            assert batcher.shed == 1
            collector.gate.set()
            await batcher.close()
            # The shed item never reached dispatch.
            assert "d" not in collector.flat
            assert collector.flat == ["a", "b", "c"]

        run(scenario())

    def test_closed_batcher_rejects_submissions(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(collector, batch_size=2)
            await batcher.close()
            with pytest.raises(BatcherClosedError):
                batcher.submit("x")

        run(scenario())

    def test_constructor_validation(self):
        async def nothing(batch):
            pass

        for kwargs in ({"batch_size": 0}, {"batch_delay_s": -1}, {"max_queue": 0}):
            with pytest.raises(ValueError):
                MicroBatcher(nothing, **kwargs)


class TestShutdown:
    def test_drain_dispatches_queued_items(self):
        async def scenario():
            collector = _Collector(gated=True)
            batcher = await _started(
                collector, batch_size=2, batch_delay_s=0.0, max_queue=64
            )
            for item in range(6):
                batcher.submit(item)
            collector.gate.set()
            await batcher.close(drain=True)
            assert collector.flat == list(range(6))

        run(scenario())

    def test_close_without_drain_discards_waiting_items(self):
        async def scenario():
            collector = _Collector(gated=True)
            batcher = await _started(
                collector, batch_size=1, batch_delay_s=0.0, max_queue=64
            )
            batcher.submit("taken")
            deadline = time.monotonic() + 5
            while batcher.depth > 0:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.002)
            batcher.submit("dropped")
            collector.gate.set()
            await batcher.close(drain=False)
            assert "dropped" not in collector.flat

        run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(collector)
            await batcher.close()
            await batcher.close()
            assert batcher.closed

        run(scenario())

    def test_close_before_start_is_safe(self):
        async def scenario():
            collector = _Collector()
            batcher = MicroBatcher(collector)
            await batcher.close()
            assert batcher.closed
            with pytest.raises(BatcherClosedError):
                batcher.submit("x")
            await batcher.start()  # post-close start must not revive it
            assert batcher.closed

        run(scenario())

    def test_dispatch_errors_do_not_kill_the_collector(self):
        async def explode(batch):
            raise RuntimeError("boom")

        async def scenario():
            batcher = MicroBatcher(explode, batch_size=1, batch_delay_s=0.0)
            await batcher.start()
            batcher.submit("a")
            batcher.submit("b")
            await batcher.close(drain=True)
            assert batcher.dispatch_errors == 2
            assert batcher.items_dispatched == 2

        run(scenario())

    def test_snapshot_counts(self):
        async def scenario():
            collector = _Collector()
            batcher = await _started(collector, batch_size=2, batch_delay_s=0.01)
            for item in range(4):
                batcher.submit(item)
            await batcher.close(drain=True)
            snap = batcher.snapshot()
            assert snap["items_dispatched"] == 4
            assert snap["depth"] == 0
            assert snap["batches"] >= 2
            assert snap["max_batch"] <= 2

        run(scenario())

    def test_counters_update_before_dispatch_completes(self):
        # Counters are bumped *before* the awaited dispatch call, so a
        # snapshot taken while dispatch is parked already sees them.
        async def scenario():
            collector = _Collector(gated=True)
            batcher = await _started(collector, batch_size=2, batch_delay_s=5.0)
            batcher.submit("a")
            batcher.submit("b")
            deadline = time.monotonic() + 5.0
            while batcher.snapshot()["batches"] < 1:
                if time.monotonic() > deadline:
                    raise AssertionError("collector never picked up the batch")
                await asyncio.sleep(0.002)
            snap = batcher.snapshot()
            assert snap["items_dispatched"] == 2
            assert snap["max_batch"] == 2
            assert collector.batches == []  # dispatch itself is still parked
            collector.gate.set()
            await batcher.close(drain=True)

        run(scenario())
