"""Tests for size-or-deadline micro-batching and queue admission."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batcher import BatcherClosedError, MicroBatcher, QueueFullError


class _Collector:
    """Records dispatched batches; optionally blocks inside dispatch."""

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.batches: list[list[object]] = []
        self.gate = gate
        self.event = threading.Event()

    def __call__(self, batch: list[object]) -> None:
        if self.gate is not None:
            self.gate.wait(timeout=10)
        self.batches.append(list(batch))
        self.event.set()

    def wait_for_batches(self, n: int, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while len(self.batches) < n:
            if time.monotonic() > deadline:
                raise AssertionError(f"saw {len(self.batches)} batches, wanted {n}")
            time.sleep(0.002)


class TestTriggers:
    def test_size_trigger_dispatches_a_full_batch(self):
        collector = _Collector()
        batcher = MicroBatcher(collector, batch_size=4, batch_delay_s=5.0, max_queue=16)
        try:
            for item in range(4):
                batcher.submit(item)
            collector.wait_for_batches(1)
            # Dispatched by size, long before the 5 s deadline.
            assert collector.batches[0] == [0, 1, 2, 3]
        finally:
            batcher.close()

    def test_deadline_trigger_fires_on_a_half_full_batch(self):
        collector = _Collector()
        batcher = MicroBatcher(collector, batch_size=8, batch_delay_s=0.05, max_queue=16)
        try:
            start = time.monotonic()
            for item in range(4):  # half of batch_size
                batcher.submit(item)
            collector.wait_for_batches(1)
            elapsed = time.monotonic() - start
            assert collector.batches[0] == [0, 1, 2, 3]
            assert elapsed < 2.0  # deadline, not starvation
        finally:
            batcher.close()

    def test_arrival_order_is_preserved_across_batches(self):
        collector = _Collector()
        batcher = MicroBatcher(collector, batch_size=3, batch_delay_s=0.01, max_queue=64)
        try:
            for item in range(10):
                batcher.submit(item)
            deadline = time.monotonic() + 5
            while sum(len(b) for b in collector.batches) < 10:
                assert time.monotonic() < deadline
                time.sleep(0.002)
            flat = [item for batch in collector.batches for item in batch]
            assert flat == list(range(10))
            assert max(len(b) for b in collector.batches) <= 3
        finally:
            batcher.close()


class TestAdmission:
    def test_sheds_when_the_queue_is_full(self):
        gate = threading.Event()
        collector = _Collector(gate)
        batcher = MicroBatcher(collector, batch_size=1, batch_delay_s=0.0, max_queue=2)
        try:
            batcher.submit("a")  # picked up by the dispatcher, blocks on gate
            deadline = time.monotonic() + 5
            while batcher.depth > 0:  # wait for the dispatcher to take "a"
                assert time.monotonic() < deadline
                time.sleep(0.002)
            batcher.submit("b")
            batcher.submit("c")
            with pytest.raises(QueueFullError):
                batcher.submit("d")
            assert batcher.shed == 1
        finally:
            gate.set()
            batcher.close()
        # The shed item never reached dispatch.
        flat = [item for batch in collector.batches for item in batch]
        assert "d" not in flat
        assert flat == ["a", "b", "c"]

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(lambda batch: None, batch_size=2)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit("x")

    def test_constructor_validation(self):
        for kwargs in ({"batch_size": 0}, {"batch_delay_s": -1}, {"max_queue": 0}):
            with pytest.raises(ValueError):
                MicroBatcher(lambda batch: None, **kwargs)


class TestShutdown:
    def test_drain_dispatches_queued_items(self):
        gate = threading.Event()
        collector = _Collector(gate)
        batcher = MicroBatcher(collector, batch_size=2, batch_delay_s=0.0, max_queue=64)
        for item in range(6):
            batcher.submit(item)
        gate.set()
        batcher.close(drain=True)
        flat = [item for batch in collector.batches for item in batch]
        assert flat == list(range(6))

    def test_close_without_drain_discards_waiting_items(self):
        gate = threading.Event()
        collector = _Collector(gate)
        batcher = MicroBatcher(collector, batch_size=1, batch_delay_s=0.0, max_queue=64)
        batcher.submit("taken")
        deadline = time.monotonic() + 5
        while batcher.depth > 0:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        batcher.submit("dropped")
        gate.set()
        batcher.close(drain=False)
        flat = [item for batch in collector.batches for item in batch]
        assert "dropped" not in flat

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda batch: None)
        batcher.close()
        batcher.close()
        assert batcher.closed

    def test_dispatch_errors_do_not_kill_the_loop(self):
        def explode(batch):
            raise RuntimeError("boom")

        batcher = MicroBatcher(explode, batch_size=1, batch_delay_s=0.0)
        batcher.submit("a")
        batcher.submit("b")
        batcher.close(drain=True)
        assert batcher.dispatch_errors == 2
        assert batcher.items_dispatched == 2

    def test_snapshot_counts(self):
        collector = _Collector()
        batcher = MicroBatcher(collector, batch_size=2, batch_delay_s=0.01)
        for item in range(4):
            batcher.submit(item)
        batcher.close(drain=True)
        snap = batcher.snapshot()
        assert snap["items_dispatched"] == 4
        assert snap["depth"] == 0
        assert snap["batches"] >= 2
        assert snap["max_batch"] <= 2


class TestSnapshotLocking:
    """Regression tests for the CON001 finding: counters shared between the
    dispatcher thread and HTTP-thread ``snapshot`` callers must be updated
    and read under the batcher's condition lock."""

    def test_snapshot_exposes_dispatch_errors(self):
        batcher = MicroBatcher(lambda batch: None, batch_size=1, batch_delay_s=0.0)
        batcher.close(drain=True)
        snap = batcher.snapshot()
        assert snap["dispatch_errors"] == 0

    def test_snapshot_counts_errors(self):
        def explode(batch):
            raise RuntimeError("boom")

        batcher = MicroBatcher(explode, batch_size=1, batch_delay_s=0.0)
        batcher.submit("a")
        batcher.close(drain=True)
        assert batcher.snapshot()["dispatch_errors"] == 1

    def test_counters_update_before_dispatch_completes(self):
        # Counters are bumped under the lock *before* the unlocked dispatch
        # call, so a snapshot taken while dispatch blocks already sees them.
        gate = threading.Event()
        collector = _Collector(gate=gate)
        batcher = MicroBatcher(collector, batch_size=2, batch_delay_s=5.0)
        try:
            batcher.submit("a")
            batcher.submit("b")
            deadline = time.monotonic() + 5.0
            while batcher.snapshot()["batches"] < 1:
                if time.monotonic() > deadline:
                    raise AssertionError("dispatcher never picked up the batch")
                time.sleep(0.002)
            snap = batcher.snapshot()
            assert snap["items_dispatched"] == 2
            assert snap["max_batch"] == 2
            assert collector.batches == []  # dispatch itself is still parked
        finally:
            gate.set()
            batcher.close(drain=True)

    def test_concurrent_snapshots_stay_consistent(self):
        collector = _Collector()
        batcher = MicroBatcher(collector, batch_size=4, batch_delay_s=0.0)
        stop = threading.Event()
        seen: list[dict] = []

        def poll():
            while not stop.is_set():
                seen.append(batcher.snapshot())

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            for item in range(200):
                batcher.submit(item)
            batcher.close(drain=True)
        finally:
            stop.set()
            poller.join(timeout=5)
        final = batcher.snapshot()
        assert final["items_dispatched"] == 200
        assert final["dispatch_errors"] == 0
        # Monotone counters: no snapshot may run backwards or overshoot.
        last = 0
        for snap in seen:
            assert last <= snap["items_dispatched"] <= 200
            last = snap["items_dispatched"]
