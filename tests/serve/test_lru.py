"""Tests for the in-memory LRU tier, alone and composed with singleflight.

The composition tests drive the full :class:`QueryService` facade: N
concurrent identical requests must cost exactly one solve, later
identical requests must be answered from memory, eviction must follow
recency order, and a solver error must leave no residue in the
singleflight map.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.lru import MemoryLRU
from repro.serve.protocol import parse_request
from repro.serve.service import QueryService

from tests.serve.test_service import RESULT, GateEngine, _loss, _poll


class TestMemoryLRU:
    def test_get_put_and_counters(self):
        lru = MemoryLRU(max_entries=4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert "a" in lru and len(lru) == 1
        snap = lru.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1 and snap["evictions"] == 0

    def test_eviction_follows_recency_order(self):
        lru = MemoryLRU(max_entries=3)
        for key in ("a", "b", "c"):
            lru.put(key, key.upper())
        lru.get("a")  # refresh: "b" is now least recently used
        lru.put("d", "D")
        assert "b" not in lru
        assert all(key in lru for key in ("a", "c", "d"))
        assert lru.evictions == 1

    def test_byte_bound_evicts_but_keeps_at_least_one_entry(self):
        lru = MemoryLRU(max_entries=100, max_bytes=1)
        lru.put("k1", "x" * 100)
        lru.put("k2", "y" * 100)
        # Each entry alone exceeds the bound; the newest always survives.
        assert len(lru) == 1 and "k2" in lru
        assert lru.evictions == 1

    def test_refreshing_a_key_does_not_double_count_bytes(self):
        lru = MemoryLRU(max_entries=4)
        lru.put("a", "xxxx")
        before = lru.snapshot()["bytes"]
        lru.put("a", "xxxx")
        assert lru.snapshot()["bytes"] == before
        assert len(lru) == 1

    def test_result_payloads_are_sized(self):
        lru = MemoryLRU(max_entries=4)
        lru.put("solve-key", RESULT)
        assert lru.snapshot()["bytes"] > len("solve-key")

    def test_clear_preserves_counters(self):
        lru = MemoryLRU(max_entries=4)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0
        assert lru.hits == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MemoryLRU(max_entries=0)
        with pytest.raises(ValueError):
            MemoryLRU(max_entries=4, max_bytes=0)


class TestTierSizing:
    def test_lru_sizes_itself_from_the_disk_cache_hints(self, tmp_path):
        from repro.exec.cache import SolveCache

        engine = GateEngine()
        engine.cache = SolveCache(tmp_path, max_entries=17, max_bytes=1 << 16)
        service = QueryService(engine)
        try:
            assert service.lru.max_entries == 17
            assert service.lru.max_bytes == 1 << 16
        finally:
            service.close()

    def test_explicit_bounds_beat_the_hints(self, tmp_path):
        from repro.exec.cache import SolveCache

        engine = GateEngine()
        engine.cache = SolveCache(tmp_path, max_entries=17)
        service = QueryService(engine, lru_entries=5, lru_bytes=1 << 10)
        try:
            assert service.lru.max_entries == 5
            assert service.lru.max_bytes == 1 << 10
        finally:
            service.close()

    def test_default_when_no_hints(self):
        from repro.serve.lru import DEFAULT_LRU_ENTRIES

        service = QueryService(GateEngine())
        try:
            assert service.lru.max_entries == DEFAULT_LRU_ENTRIES
            assert service.lru.max_bytes is None
        finally:
            service.close()


class TestTieredService:
    def test_concurrent_identical_requests_one_solve_then_memory_hits(self):
        gate = threading.Event()
        engine = GateEngine(gate)
        service = QueryService(engine, batch_size=4, batch_delay_s=0.005)
        request = _loss()
        responses: list[dict] = []
        lock = threading.Lock()

        def ask() -> None:
            response = service.query(request)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=ask) for _ in range(6)]
        try:
            for thread in threads:
                thread.start()
            _poll(lambda: service.singleflight.hits == 5, message="5 followers attached")
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
            # Exactly one backend solve for six concurrent identical requests.
            assert engine.total_tasks == 1
            assert len(responses) == 6
            assert sum(1 for r in responses if r["tier"] == "engine") == 1
            assert sum(1 for r in responses if r["tier"] == "flight") == 5
            # Later identical requests replay from the memory tier without
            # opening a new singleflight window.
            leaders_before = service.singleflight.leaders
            for _ in range(3):
                assert service.query(request)["tier"] == "memory"
            assert engine.total_tasks == 1
            assert service.singleflight.leaders == leaders_before
            assert service.lru.hits == 3
        finally:
            gate.set()
            service.close()

    def test_lru_eviction_forces_a_resolve(self):
        engine = GateEngine()
        service = QueryService(
            engine, batch_size=1, batch_delay_s=0.0, lru_entries=2
        )
        try:
            hot = _loss(buffer=0.30)
            service.query(hot)
            service.query(_loss(buffer=0.31))
            service.query(_loss(buffer=0.32))  # evicts the 0.30 entry
            assert service.lru.evictions == 1
            response = service.query(hot)
            assert response["tier"] == "engine"  # memory miss → solved again
            assert engine.total_tasks == 4
        finally:
            service.close()

    def test_solver_error_cleans_the_inflight_map_and_propagates(self):
        class ExplodingEngine(GateEngine):
            def run_tasks(self, tasks):
                raise RuntimeError("kernel exploded")

        engine = ExplodingEngine()
        service = QueryService(engine, batch_size=1, batch_delay_s=0.0)
        try:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                service.query(_loss())
            # The window closed: nothing in flight, nothing cached.
            assert service.singleflight.inflight == 0
            assert len(service.lru) == 0
            assert service.errors == 1
            # The same fingerprint can be retried and leads a new window.
            with pytest.raises(RuntimeError, match="kernel exploded"):
                service.query(_loss())
            assert service.singleflight.leaders == 2
        finally:
            service.close()

    def test_dimension_error_cleans_the_inflight_map(self):
        engine = GateEngine()
        service = QueryService(engine)
        bad = parse_request(
            # A structurally valid dimension request whose bisection fails:
            # target loss far above what a 0-buffer system can miss is fine,
            # so instead drive utilization ~1 where dimensioning explodes.
            {"kind": "dimension", "hurst": 0.7, "cutoff": 2.0, "buffer": 0.3,
             "target_loss": 0.9999, "utilization": 0.999,
             "relative_gap": 0.5, "initial_bins": 32, "max_bins": 64}
        )
        try:
            try:
                service.query(bad)
            except Exception:
                pass  # outcome depends on the solver; cleanliness must not
            assert service.singleflight.inflight == 0
        finally:
            service.close()
