"""Tests for the singleflight in-flight deduplication map."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.singleflight import Singleflight


def run(coroutine):
    return asyncio.run(coroutine)


class TestAdmit:
    def test_first_arrival_leads(self):
        async def scenario():
            flight = Singleflight()
            future, leader = flight.admit("k")
            assert leader is True
            assert flight.inflight == 1
            assert flight.leaders == 1
            assert flight.hits == 0
            flight.abandon("k")

        run(scenario())

    def test_followers_share_the_leaders_future(self):
        async def scenario():
            flight = Singleflight()
            leader_future, _ = flight.admit("k")
            follower_future, leader = flight.admit("k")
            assert leader is False
            assert follower_future is leader_future
            assert flight.hits == 1
            flight.abandon("k")

        run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = Singleflight()
            _, first = flight.admit("a")
            _, second = flight.admit("b")
            assert first and second
            assert flight.inflight == 2
            assert flight.hits == 0
            flight.abandon("a")
            flight.abandon("b")

        run(scenario())


class TestCompletion:
    def test_resolve_wakes_every_waiter_and_closes_the_window(self):
        async def scenario():
            flight = Singleflight()
            future, _ = flight.admit("k")
            follower, _ = flight.admit("k")
            flight.resolve("k", 42)
            assert await future == 42
            assert await follower == 42
            assert flight.inflight == 0
            # The window is closed: a new identical request leads again.
            fresh, leader = flight.admit("k")
            assert leader is True
            flight.abandon("k")

        run(scenario())

    def test_fail_propagates_to_all_waiters(self):
        async def scenario():
            flight = Singleflight()
            future, _ = flight.admit("k")
            flight.fail("k", ValueError("boom"))
            with pytest.raises(ValueError, match="boom"):
                await future
            assert flight.inflight == 0

        run(scenario())

    def test_completing_unknown_keys_is_a_noop(self):
        async def scenario():
            flight = Singleflight()
            flight.resolve("ghost", 1)
            flight.fail("ghost", RuntimeError())
            flight.abandon("ghost")
            assert flight.inflight == 0

        run(scenario())

    def test_abandon_cancels_raced_followers(self):
        async def scenario():
            flight = Singleflight()
            future, _ = flight.admit("k")
            flight.abandon("k")
            with pytest.raises(asyncio.CancelledError):
                await future
            assert flight.inflight == 0

        run(scenario())

    def test_fail_all_fails_every_window(self):
        async def scenario():
            flight = Singleflight()
            futures = [flight.admit(key)[0] for key in ("a", "b", "c")]
            flight.fail_all(RuntimeError("draining"))
            for future in futures:
                with pytest.raises(RuntimeError, match="draining"):
                    await future
            assert flight.inflight == 0

        run(scenario())


class TestContention:
    def test_many_concurrent_admits_one_leader(self):
        async def scenario():
            flight = Singleflight()
            outcomes: list[bool] = []

            async def contend() -> int:
                future, leader = flight.admit("hot-key")
                outcomes.append(leader)
                return await future

            tasks = [asyncio.ensure_future(contend()) for _ in range(16)]
            await asyncio.sleep(0)  # let every task reach its await
            flight.resolve("hot-key", 7)
            results = await asyncio.gather(*tasks)
            assert results == [7] * 16
            assert sum(outcomes) == 1  # exactly one leader
            assert flight.hits == 15
            assert flight.snapshot() == {"inflight": 0, "leaders": 1, "hits": 15}

        run(scenario())
