"""Tests for in-flight request coalescing."""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

import pytest

from repro.serve.coalescer import RequestCoalescer


class TestAdmit:
    def test_first_arrival_leads(self):
        coalescer = RequestCoalescer()
        future, leader = coalescer.admit("k")
        assert leader is True
        assert coalescer.inflight == 1
        assert coalescer.leaders == 1
        assert coalescer.hits == 0

    def test_followers_share_the_leaders_future(self):
        coalescer = RequestCoalescer()
        leader_future, _ = coalescer.admit("k")
        follower_future, leader = coalescer.admit("k")
        assert leader is False
        assert follower_future is leader_future
        assert coalescer.hits == 1

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = RequestCoalescer()
        _, first = coalescer.admit("a")
        _, second = coalescer.admit("b")
        assert first and second
        assert coalescer.inflight == 2
        assert coalescer.hits == 0


class TestCompletion:
    def test_resolve_wakes_every_waiter_and_closes_the_window(self):
        coalescer = RequestCoalescer()
        future, _ = coalescer.admit("k")
        coalescer.admit("k")
        coalescer.resolve("k", 42)
        assert future.result(timeout=1) == 42
        assert coalescer.inflight == 0
        # The window is closed: a new identical request leads again.
        _, leader = coalescer.admit("k")
        assert leader is True

    def test_fail_propagates_to_all_waiters(self):
        coalescer = RequestCoalescer()
        future, _ = coalescer.admit("k")
        coalescer.fail("k", ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=1)
        assert coalescer.inflight == 0

    def test_completing_unknown_keys_is_a_noop(self):
        coalescer = RequestCoalescer()
        coalescer.resolve("ghost", 1)
        coalescer.fail("ghost", RuntimeError())
        coalescer.abandon("ghost")

    def test_abandon_cancels_raced_followers(self):
        coalescer = RequestCoalescer()
        future, _ = coalescer.admit("k")
        coalescer.abandon("k")
        with pytest.raises(CancelledError):
            future.result(timeout=1)
        assert coalescer.inflight == 0


class TestContention:
    def test_many_threads_one_leader(self):
        coalescer = RequestCoalescer()
        outcomes: list[bool] = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def contend() -> None:
            barrier.wait()
            _, leader = coalescer.admit("hot-key")
            with lock:
                outcomes.append(leader)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 1  # exactly one leader
        assert coalescer.hits == 15
        assert coalescer.snapshot() == {"inflight": 1, "leaders": 1, "hits": 15}
