"""Tests for the HTTP front-end and the stdlib client, over real sockets."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.exec import SweepEngine
from repro.serve import QueryService, ServeClient, ServeError, make_server

QUICK = {"hurst": 0.7, "cutoff": 2.0, "buffer": 0.3,
         "initial_bins": 32, "max_bins": 64, "relative_gap": 0.5}


@pytest.fixture
def server():
    service = QueryService(SweepEngine(), batch_size=4, batch_delay_s=0.005)
    server = make_server("127.0.0.1", 0, service).start_background()
    yield server
    server.close()


@pytest.fixture
def client(server):
    client = ServeClient(f"http://127.0.0.1:{server.port}", timeout_s=30.0)
    client.wait_until_ready(timeout_s=10.0)
    return client


class TestEndpoints:
    def test_healthz_reports_ok(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

    def test_loss_query_round_trip(self, client):
        response = client.loss(**QUICK)
        assert response["ok"] is True
        assert response["kind"] == "loss"
        result = response["result"]
        assert 0.0 < result["lower"] <= result["upper"] < 1.0
        assert result["converged"] is True
        assert response["coalesced"] is False

    def test_horizon_and_dimension_round_trip(self, client):
        horizon = client.horizon(hurst=0.75, buffer=0.5)
        assert horizon["result"]["eq26_horizon_s"] > 0
        dimension = client.dimension(
            hurst=0.7, cutoff=2.0, buffer=0.3, target_loss=1e-2,
            relative_gap=0.5, initial_bins=32, max_bins=64,
        )
        assert 1.0 < dimension["result"]["effective_bandwidth"] <= 2.0

    def test_stats_reflects_traffic(self, client):
        client.loss(**QUICK)
        stats = client.stats()
        assert stats["accepted"] >= 1
        assert stats["completed"] >= 1
        assert stats["engine"]["cells"] >= 1
        assert "queue" in stats and "latency_s" in stats
        assert stats["singleflight"]["leaders"] >= 1
        assert stats["memory_lru"]["entries"] >= 1
        # A replay of the same query is answered from the memory tier.
        client.loss(**QUICK)
        assert client.stats()["memory_lru"]["hits"] >= 1

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/nope", {"kind": "loss"})
        assert excinfo.value.status == 404


class TestErrorMapping:
    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/query",
            data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "invalid JSON" in json.loads(excinfo.value.read())["error"]

    def test_protocol_violations_are_400_with_a_message(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.query({"kind": "loss", "hurst": 1.5})
        assert excinfo.value.status == 400
        assert "hurst" in str(excinfo.value)
        with pytest.raises(ServeError) as excinfo:
            client.query({"kind": "warp"})
        assert excinfo.value.status == 400

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/query", data=b"", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestShutdown:
    def test_draining_server_returns_503_on_healthz(self):
        service = QueryService(SweepEngine(), batch_size=2, batch_delay_s=0.005)
        server = make_server("127.0.0.1", 0, service).start_background()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_until_ready(timeout_s=10.0)
        # Drain the service but keep the listener up: health must flip to 503
        # so a load balancer stops routing before the socket goes away.
        service.close(drain=True)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            with pytest.raises(ServeError) as excinfo:
                client.loss(**QUICK)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after_s is not None
        finally:
            server.close()

    def test_server_close_is_idempotent(self):
        service = QueryService(SweepEngine())
        server = make_server("127.0.0.1", 0, service).start_background()
        server.close()
        server.close()
