"""Tests for the query service core: singleflight, shedding, drain, timeouts.

These tests drive the thread-safe :class:`QueryService` facade directly
(no HTTP) against a stub engine whose dispatch can be blocked on an
event, which makes the contention windows deterministic: requests can be
piled up *while* a solve is provably in flight on the executor.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.results import LossRateResult
from repro.exec.telemetry import SweepTelemetry
from repro.serve.protocol import parse_request
from repro.serve.service import (
    QueryService,
    QueryTimeoutError,
    ServiceDrainingError,
    ServiceOverloadedError,
)

RESULT = LossRateResult(
    lower=0.01, upper=0.02, iterations=10, bins=64, converged=True, negligible=False,
)


class GateEngine:
    """Engine stand-in: returns canned results, optionally gated, call-counted."""

    def __init__(self, gate: threading.Event | None = None, delay_s: float = 0.0):
        self.gate = gate
        self.delay_s = delay_s
        self.calls: list[int] = []
        self.keys_seen: list[str] = []
        self.telemetry = SweepTelemetry()
        self.cache = None
        self.close_calls = 0
        self._lock = threading.Lock()

    def run_tasks(self, tasks):
        if self.gate is not None:
            assert self.gate.wait(timeout=10), "test gate never opened"
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.calls.append(len(tasks))
            self.keys_seen.extend(task.cache_key() for task in tasks)
        return [RESULT for _ in tasks]

    @property
    def total_tasks(self) -> int:
        with self._lock:
            return sum(self.calls)

    def close(self):
        self.close_calls += 1


def _loss(buffer: float = 0.3, **extra) -> dict:
    return parse_request({"kind": "loss", "hurst": 0.7, "cutoff": 2.0,
                          "buffer": buffer, **extra})


def _poll(predicate, timeout: float = 5.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.002)


class TestCoalescingUnderContention:
    def test_n_identical_concurrent_requests_one_solve(self):
        gate = threading.Event()
        engine = GateEngine(gate)
        service = QueryService(engine, batch_size=4, batch_delay_s=0.005)
        request = _loss()
        responses: list[dict] = []
        lock = threading.Lock()

        def ask() -> None:
            response = service.query(request)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=ask) for _ in range(8)]
        try:
            for thread in threads:
                thread.start()
            # All eight are attached before the solve is allowed to finish.
            _poll(lambda: service.singleflight.hits == 7, message="7 singleflight hits")
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
        finally:
            gate.set()
            service.close()

        assert len(responses) == 8
        assert engine.total_tasks == 1  # exactly one backend solve
        assert sum(1 for r in responses if r["coalesced"]) == 7
        assert all(r["result"]["lower"] == RESULT.lower for r in responses)
        stats = service.stats()
        assert stats["singleflight"]["hits"] == 7
        assert stats["singleflight"]["leaders"] == 1

    def test_distinct_requests_are_not_coalesced(self):
        engine = GateEngine()
        service = QueryService(engine, batch_size=4, batch_delay_s=0.005)
        try:
            for i in range(3):
                service.query(_loss(buffer=0.3 + 0.1 * i))
        finally:
            service.close()
        assert engine.total_tasks == 3
        assert service.singleflight.hits == 0


class TestAdmissionControl:
    def test_shed_requests_get_429_and_never_reach_the_backend(self):
        gate = threading.Event()
        engine = GateEngine(gate)
        service = QueryService(
            engine, batch_size=1, batch_delay_s=0.0, max_queue=1
        )
        first = _loss(buffer=0.30)
        second = _loss(buffer=0.31)
        shed = _loss(buffer=0.32)
        threads = []
        try:
            threads.append(threading.Thread(target=service.query, args=(first,)))
            threads[-1].start()
            # Dispatcher takes the first item (blocks on the gate), queue empties.
            _poll(lambda: service.batcher.depth == 0 and service.batcher.batches >= 0
                  and service.accepted == 1, message="first request picked up")
            _poll(lambda: service.batcher.depth == 0, message="queue drained to dispatcher")
            threads.append(threading.Thread(target=service.query, args=(second,)))
            threads[-1].start()
            _poll(lambda: service.batcher.depth == 1, message="second request queued")

            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.query(shed)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is not None
        finally:
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
            service.close()

        assert shed.key() not in engine.keys_seen  # never reached the backend
        assert engine.total_tasks == 2
        assert service.stats()["queue"]["shed"] == 1

    def test_per_request_timeout_expires_while_computation_continues(self):
        gate = threading.Event()
        engine = GateEngine(gate)
        service = QueryService(engine, batch_size=1, batch_delay_s=0.0)
        try:
            with pytest.raises(QueryTimeoutError) as excinfo:
                service.query(_loss(timeout_s=0.05))
            assert excinfo.value.status == 504
            assert service.timeouts == 1
        finally:
            gate.set()
            service.close()
        # The solve itself still completed during drain.
        assert engine.total_tasks == 1


class TestDrain:
    def test_drain_completes_in_flight_work(self):
        engine = GateEngine(delay_s=0.05)
        service = QueryService(engine, batch_size=2, batch_delay_s=0.01)
        responses: list[dict] = []
        lock = threading.Lock()

        def ask(i: int) -> None:
            response = service.query(_loss(buffer=0.3 + 0.05 * i))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        _poll(lambda: service.accepted == 6, message="all requests accepted")
        service.close(drain=True)
        for thread in threads:
            thread.join(timeout=10)

        assert len(responses) == 6  # every in-flight request completed
        assert all(r["ok"] for r in responses)
        assert engine.total_tasks == 6
        assert engine.close_calls == 1

    def test_draining_service_rejects_new_requests_with_503(self):
        service = QueryService(GateEngine())
        service.close()
        with pytest.raises(ServiceDrainingError) as excinfo:
            service.query(_loss())
        assert excinfo.value.status == 503

    def test_close_is_idempotent(self):
        engine = GateEngine()
        service = QueryService(engine)
        service.close()
        service.close()
        assert engine.close_calls == 1

    def test_context_manager_closes(self):
        engine = GateEngine()
        with QueryService(engine) as service:
            service.query(_loss())
        assert engine.close_calls == 1


class TestInlineKinds:
    def test_horizon_answers_without_touching_the_backend(self):
        engine = GateEngine(threading.Event())  # would hang if dispatched
        service = QueryService(engine)
        try:
            response = service.query(parse_request(
                {"kind": "horizon", "hurst": 0.75, "buffer": 0.5}
            ))
        finally:
            engine.gate.set()
            service.close()
        assert response["ok"] is True
        assert response["result"]["eq26_horizon_s"] > 0
        assert response["result"]["norros_horizon_s"] > 0
        assert engine.total_tasks == 0

    def test_dimension_runs_on_the_aux_executor_and_caches(self):
        engine = GateEngine(threading.Event())
        service = QueryService(engine)
        request = parse_request(
            {"kind": "dimension", "hurst": 0.7, "cutoff": 2.0, "buffer": 0.3,
             "target_loss": 1e-2, "relative_gap": 0.5,
             "initial_bins": 32, "max_bins": 64}
        )
        try:
            first = service.query(request)
            second = service.query(request)
        finally:
            engine.gate.set()
            service.close()
        assert engine.total_tasks == 0  # the bisection bypasses the batcher
        bandwidth = first["result"]["effective_bandwidth"]
        assert 1.0 < bandwidth <= 2.0
        assert second["result"]["effective_bandwidth"] == bandwidth
        assert second["tier"] == "memory"  # replayed from the LRU, not re-bisected


class TestStats:
    def test_stats_shape_and_counts(self):
        engine = GateEngine()
        service = QueryService(engine, batch_size=2, batch_delay_s=0.005)
        try:
            service.query(_loss())
            service.query(_loss())  # second replays from the memory LRU
            stats = service.stats()
        finally:
            service.close()
        assert stats["accepted"] == 2
        assert stats["completed"] == 2
        assert stats["inflight"] == 0
        assert stats["cache"] is None
        assert stats["queue"]["items_dispatched"] == 1  # one solve, one LRU hit
        assert stats["memory_lru"]["hits"] == 1
        assert stats["memory_lru"]["misses"] == 1
        assert stats["memory_lru"]["entries"] == 1
        assert stats["memory_lru"]["evictions"] == 0
        assert stats["singleflight"] == {"inflight": 0, "leaders": 1, "hits": 0}
        assert stats["latency_s"]["total"]["count"] == 2
        assert stats["latency_s"]["queue"]["count"] == 1
        assert stats["latency_s"]["solve"]["p99_s"] >= 0.0
        assert stats["engine"]["cells"] == 0.0  # stub telemetry records nothing
        assert stats["batches"] == {
            "batched_tasks": 0,
            "fallback_solo": 0,
            "shapes": {},
        }

    def test_stats_surface_batch_counters_from_engine_telemetry(self):
        from repro.exec.telemetry import CellTelemetry

        engine = GateEngine()

        def cell(index: int, width: int, cached: bool = False) -> CellTelemetry:
            return CellTelemetry(
                index=index, key=f"k{index}", seconds=0.0, iterations=1,
                bins=64, converged=True, negligible=False, cached=cached,
                batch_width=width,
            )

        # Three cells stacked four wide, one solo, one cache hit: the hit
        # must not count toward either batching bucket.
        engine.telemetry.record(cell(0, width=4))
        engine.telemetry.record(cell(1, width=4))
        engine.telemetry.record(cell(2, width=4))
        engine.telemetry.record(cell(3, width=1))
        engine.telemetry.record(cell(4, width=8, cached=True))
        service = QueryService(engine)
        try:
            stats = service.stats()
        finally:
            service.close()
        assert stats["batches"]["batched_tasks"] == 3
        assert stats["batches"]["fallback_solo"] == 1
        assert stats["batches"]["shapes"] == {"4": 3}
        assert stats["engine"]["batched_tasks"] == 3.0
        assert stats["engine"]["fallback_solo"] == 1.0
