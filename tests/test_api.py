"""Public-API surface tests: imports, __all__, docstrings, doctests."""

from __future__ import annotations

import doctest
import importlib

import pytest

import repro

MODULES = [
    "repro",
    "repro.core",
    "repro.core.truncated_pareto",
    "repro.core.marginal",
    "repro.core.source",
    "repro.core.workload",
    "repro.core.loss",
    "repro.core.solver",
    "repro.core.horizon",
    "repro.core.results",
    "repro.core.validation",
    "repro.traffic",
    "repro.traffic.fgn",
    "repro.traffic.farima",
    "repro.traffic.onoff",
    "repro.traffic.mginf",
    "repro.traffic.trace",
    "repro.traffic.shuffle",
    "repro.traffic.video",
    "repro.traffic.ethernet",
    "repro.traffic.spurious",
    "repro.analysis",
    "repro.analysis.acf",
    "repro.analysis.hurst",
    "repro.analysis.whittle",
    "repro.analysis.wavelet",
    "repro.analysis.histogram",
    "repro.queueing",
    "repro.queueing.fluid_sim",
    "repro.queueing.mmfq",
    "repro.queueing.markov",
    "repro.queueing.cts",
    "repro.queueing.dimensioning",
    "repro.queueing.fbm",
    "repro.apps",
    "repro.apps.error_control",
    "repro.experiments",
    "repro.experiments.sweeps",
    "repro.experiments.figures",
    "repro.experiments.reporting",
    "repro.experiments.paperconfig",
    "repro.experiments.runner",
    "repro.experiments.asciiplot",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [m for m in MODULES if not m.endswith("__main__")])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_reexports():
    # Everything in repro.__all__ must exist and be importable directly.
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)


@pytest.mark.parametrize(
    "name",
    ["repro", "repro.core.truncated_pareto", "repro.core.marginal", "repro.core.solver"],
)
def test_doctests_pass(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0


def test_public_classes_have_docstrings():
    from repro import (
        CutoffFluidSource,
        DiscreteMarginal,
        FluidQueue,
        LossRateResult,
        SolverConfig,
        TruncatedPareto,
        WorkloadLaw,
    )

    for cls in (
        TruncatedPareto,
        DiscreteMarginal,
        CutoffFluidSource,
        WorkloadLaw,
        FluidQueue,
        SolverConfig,
        LossRateResult,
    ):
        assert cls.__doc__ and len(cls.__doc__) > 40
