"""Tests for sample autocovariance / autocorrelation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.acf import autocorrelation, autocovariance


class TestAutocovariance:
    def test_matches_direct_computation(self, rng):
        x = rng.standard_normal(500)
        fast = autocovariance(x, 10)
        centered = x - x.mean()
        for k in range(11):
            direct = float(np.sum(centered[: 500 - k] * centered[k:]) / 500)
            assert fast[k] == pytest.approx(direct, abs=1e-10)

    def test_lag_zero_is_biased_variance(self, rng):
        x = rng.standard_normal(1000)
        gamma = autocovariance(x, 0)
        assert gamma[0] == pytest.approx(x.var())

    def test_default_max_lag(self, rng):
        x = rng.standard_normal(64)
        assert autocovariance(x).shape == (64,)

    def test_white_noise_decorrelated(self, rng):
        x = rng.standard_normal(100_000)
        gamma = autocovariance(x, 5)
        assert np.all(np.abs(gamma[1:]) < 0.02)

    def test_ar1_structure(self, rng):
        rho = 0.7
        n = 100_000
        x = np.empty(n)
        x[0] = rng.standard_normal()
        noise = rng.standard_normal(n)
        for i in range(1, n):
            x[i] = rho * x[i - 1] + noise[i]
        acf = autocorrelation(x, 3)
        assert acf[1] == pytest.approx(rho, abs=0.02)
        assert acf[2] == pytest.approx(rho**2, abs=0.02)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            autocovariance(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="max_lag"):
            autocovariance(np.zeros(10), 10)

    def test_constant_series_autocorrelation_rejected(self):
        with pytest.raises(ValueError, match="variance"):
            autocorrelation(np.full(100, 3.0), 5)

    def test_autocorrelation_unit_at_zero(self, rng):
        x = rng.standard_normal(1000)
        acf = autocorrelation(x, 5)
        assert acf[0] == pytest.approx(1.0)
        assert np.all(np.abs(acf) <= 1.0 + 1e-12)
