"""Tests for histogram / run-length analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import (
    bin_indices,
    coefficient_of_variation,
    marginal_from_samples,
    marginal_summary,
    mean_run_length,
    run_lengths,
)
from repro.core.marginal import DiscreteMarginal


class TestBinIndices:
    def test_two_bins(self):
        idx = bin_indices(np.array([0.0, 0.4, 0.6, 1.0]), bins=2)
        np.testing.assert_array_equal(idx, [0, 0, 1, 1])

    def test_constant_series(self):
        idx = bin_indices(np.full(5, 3.0), bins=10)
        np.testing.assert_array_equal(idx, np.zeros(5, dtype=np.int64))

    def test_max_value_in_last_bin(self):
        idx = bin_indices(np.array([0.0, 1.0]), bins=4)
        assert idx[-1] == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            bin_indices(np.array([]))
        with pytest.raises(ValueError, match="bins"):
            bin_indices(np.array([1.0]), bins=0)


class TestRunLengths:
    def test_basic(self):
        runs = run_lengths(np.array([1, 1, 2, 2, 2, 1]))
        np.testing.assert_array_equal(runs, [2, 3, 1])

    def test_single_run(self):
        np.testing.assert_array_equal(run_lengths(np.zeros(7, dtype=int)), [7])

    def test_all_distinct(self):
        np.testing.assert_array_equal(run_lengths(np.arange(5)), np.ones(5, dtype=int))

    def test_lengths_sum_to_total(self, rng):
        idx = rng.integers(0, 3, size=200)
        assert run_lengths(idx).sum() == 200

    def test_mean_run_length(self):
        samples = np.array([1.0, 1.0, 1.0, 9.0, 9.0, 9.0])
        assert mean_run_length(samples, bins=2) == pytest.approx(3.0)


class TestMarginalHelpers:
    def test_marginal_from_samples_matches_class(self, rng):
        samples = rng.gamma(4.0, 1.0, 5000)
        a = marginal_from_samples(samples, bins=20)
        b = DiscreteMarginal.from_samples(samples, bins=20)
        np.testing.assert_allclose(a.rates, b.rates)

    def test_coefficient_of_variation(self):
        marginal = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
        assert coefficient_of_variation(marginal) == pytest.approx(1.0)

    def test_cv_rejects_zero_mean(self):
        marginal = DiscreteMarginal(rates=[0.0], probs=[1.0])
        with pytest.raises(ValueError, match="positive"):
            coefficient_of_variation(marginal)

    def test_summary_keys(self):
        marginal = DiscreteMarginal(rates=[1.0, 2.0, 3.0], probs=[0.2, 0.5, 0.3])
        summary = marginal_summary(marginal)
        assert set(summary) == {"levels", "mean", "std", "cv", "min", "max", "peak_to_mean"}
        assert summary["levels"] == 3.0
        assert summary["mean"] == pytest.approx(marginal.mean)
        assert summary["peak_to_mean"] == pytest.approx(3.0 / marginal.mean)
