"""Tests for the DWT and the Abry-Veitch wavelet Hurst estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.wavelet import (
    WAVELET_FILTERS,
    dwt_details,
    logscale_diagram,
    wavelet_hurst,
)
from repro.traffic.fgn import generate_fgn


class TestFilters:
    @pytest.mark.parametrize("name", sorted(WAVELET_FILTERS))
    def test_lowpass_normalization(self, name):
        taps = WAVELET_FILTERS[name]
        assert float(np.sum(taps**2)) == pytest.approx(1.0, abs=1e-8)
        assert float(np.sum(taps)) == pytest.approx(np.sqrt(2.0), abs=1e-8)

    @pytest.mark.parametrize("name", sorted(WAVELET_FILTERS))
    def test_highpass_kills_constants(self, name):
        constant = np.ones(64)
        details = dwt_details(constant, wavelet=name, max_level=2)
        for level in details:
            np.testing.assert_allclose(level, 0.0, atol=1e-10)


class TestDwt:
    def test_pyramid_sizes_halve(self):
        x = np.random.default_rng(0).standard_normal(1024)
        details = dwt_details(x, wavelet="haar")
        sizes = [d.size for d in details]
        assert sizes[0] == 512
        for a, b in zip(sizes, sizes[1:]):
            assert b == a // 2

    def test_haar_detail_values(self):
        x = np.array([1.0, 3.0, 2.0, 2.0, 5.0, 1.0, 4.0, 4.0])
        details = dwt_details(x, wavelet="haar", max_level=1)
        # Haar high-pass (quadrature mirror of [1,1]/sqrt2) gives
        # +-(x0 - x1)/sqrt2 per pair.
        np.testing.assert_allclose(
            np.abs(details[0]), np.abs(x[0::2] - x[1::2]) / np.sqrt(2.0)
        )

    def test_energy_conservation_haar_one_level(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(256)
        taps = WAVELET_FILTERS["haar"]
        from repro.analysis.wavelet import _highpass, _periodic_filter_downsample

        approx = _periodic_filter_downsample(x, taps)
        detail = _periodic_filter_downsample(x, _highpass(taps))
        assert float(approx @ approx + detail @ detail) == pytest.approx(float(x @ x))

    def test_unknown_wavelet_rejected(self):
        with pytest.raises(ValueError, match="unknown wavelet"):
            dwt_details(np.zeros(64), wavelet="sym8")

    def test_short_series_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            dwt_details(np.zeros(4))


class TestLogscaleDiagram:
    def test_white_noise_flat(self):
        x = np.random.default_rng(2).standard_normal(65536)
        octaves, log_energy, counts = logscale_diagram(x, wavelet="haar")
        # Flat diagram: slope near 0 over the first several octaves.
        slope = np.polyfit(octaves[:6], log_energy[:6], 1)[0]
        assert abs(slope) < 0.15
        assert counts[0] > counts[-1]

    def test_degenerate_series_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            logscale_diagram(np.full(128, 5.0))


class TestWaveletHurst:
    @pytest.mark.parametrize("hurst", [0.6, 0.8, 0.9])
    def test_recovers_hurst(self, hurst):
        path = generate_fgn(32768, hurst, np.random.default_rng(int(hurst * 1000)))
        estimate = wavelet_hurst(path)
        assert estimate.hurst == pytest.approx(hurst, abs=0.08)

    def test_db2_handles_linear_trend(self):
        # db2 has two vanishing moments: a linear trend must not inflate H
        # by much compared with the trend-free series.
        rng = np.random.default_rng(3)
        path = generate_fgn(16384, 0.7, rng)
        trend = np.linspace(0.0, 1.0, path.size)
        clean = wavelet_hurst(path, wavelet="db2").hurst
        trended = wavelet_hurst(path + trend, wavelet="db2").hurst
        assert trended == pytest.approx(clean, abs=0.05)

    def test_octave_range_fallback(self):
        x = np.random.default_rng(4).standard_normal(128)
        estimate = wavelet_hurst(x, min_octave=50)  # impossible range -> fallback
        assert np.isfinite(estimate.hurst)
