"""Tests for the Whittle MLE Hurst estimator."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import integrate

from repro.analysis.whittle import fgn_spectral_shape, whittle_hurst
from repro.traffic.fgn import fgn_autocovariance, generate_fgn


class TestSpectralShape:
    def test_positive(self):
        lam = np.linspace(0.01, np.pi, 50)
        shape = fgn_spectral_shape(lam, 0.8)
        assert np.all(shape > 0.0)

    def test_low_frequency_divergence_for_lrd(self):
        shape = fgn_spectral_shape(np.array([0.001, 0.01]), 0.8)
        # f ~ lambda^{1-2H} = lambda^{-0.6}: decade ratio ~ 10^{0.6}.
        assert shape[0] / shape[1] == pytest.approx(10.0**0.6, rel=0.05)

    def test_integral_matches_variance(self):
        # (1/pi) int_0^pi f dlambda with the right constant equals gamma(0);
        # our shape omits the constant, so check proportionality via gamma(1).
        hurst = 0.7
        gamma = fgn_autocovariance(hurst, 2)
        f0, _ = integrate.quad(
            lambda l: float(fgn_spectral_shape(np.array([l]), hurst)[0]), 1e-6, np.pi,
            limit=200,
        )
        f1, _ = integrate.quad(
            lambda l: float(fgn_spectral_shape(np.array([l]), hurst)[0]) * np.cos(l),
            1e-6,
            np.pi,
            limit=200,
        )
        assert f1 / f0 == pytest.approx(gamma[1] / gamma[0], abs=0.01)

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError, match="frequencies"):
            fgn_spectral_shape(np.array([0.0]), 0.8)
        with pytest.raises(ValueError, match="frequencies"):
            fgn_spectral_shape(np.array([4.0]), 0.8)

    def test_rejects_bad_hurst(self):
        with pytest.raises(ValueError, match="hurst"):
            fgn_spectral_shape(np.array([0.1]), 1.5)


class TestWhittle:
    @pytest.mark.parametrize("hurst", [0.6, 0.75, 0.9])
    def test_recovers_hurst(self, hurst):
        path = generate_fgn(16384, hurst, np.random.default_rng(int(hurst * 100)))
        estimate = whittle_hurst(path)
        assert estimate.hurst == pytest.approx(hurst, abs=0.05)

    def test_method_label(self):
        path = generate_fgn(2048, 0.7, np.random.default_rng(0))
        assert whittle_hurst(path).method == "Whittle"

    def test_scale_invariance(self):
        path = generate_fgn(8192, 0.8, np.random.default_rng(1))
        a = whittle_hurst(path).hurst
        b = whittle_hurst(10.0 * path + 5.0).hurst
        assert a == pytest.approx(b, abs=1e-6)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError, match="128"):
            whittle_hurst(np.arange(64.0))

    def test_rejects_constant(self):
        with pytest.raises(ValueError, match="constant"):
            whittle_hurst(np.full(256, 1.0))
