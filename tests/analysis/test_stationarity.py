"""Tests for the segment-based stationarity diagnostic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stationarity import mean_drift_statistic, segment_summary
from repro.traffic.spurious import (
    ar1_process,
    hyperbolic_trend_process,
    level_shift_process,
)

N = 32768


class TestSegmentSummary:
    def test_shapes_and_remainder(self):
        x = np.arange(103.0)
        summary = segment_summary(x, segments=4)
        assert summary.means.shape == (4,)
        assert summary.segment_length == 25  # 103 // 4, remainder dropped

    def test_constant_series(self):
        summary = segment_summary(np.full(64, 3.0), segments=4)
        np.testing.assert_allclose(summary.means, 3.0)
        np.testing.assert_allclose(summary.stds, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="segments"):
            segment_summary(np.arange(100.0), segments=1)
        with pytest.raises(ValueError, match="too short"):
            segment_summary(np.arange(10.0), segments=8)
        with pytest.raises(ValueError, match="1-D"):
            segment_summary(np.zeros((4, 4)))


class TestMeanDriftStatistic:
    def test_stationary_srd_near_one(self):
        values = [
            mean_drift_statistic(
                ar1_process(N, 0.3, np.random.default_rng(seed)), segments=32
            )
            for seed in range(1, 6)
        ]
        assert max(values) < 8.0
        assert min(values) > 0.1

    def test_level_shifts_flagged(self):
        values = [
            mean_drift_statistic(
                level_shift_process(N, np.random.default_rng(seed), mean_run=512),
                segments=32,
            )
            for seed in range(1, 4)
        ]
        assert min(values) > 8.0

    def test_trend_flagged_strongly(self):
        value = mean_drift_statistic(
            hyperbolic_trend_process(N, np.random.default_rng(1), trend_scale=5.0),
            segments=32,
        )
        assert value > 50.0

    def test_ordering_clean_vs_contaminated(self):
        rng_seed = 7
        clean = mean_drift_statistic(
            ar1_process(N, 0.3, np.random.default_rng(rng_seed)), segments=32
        )
        dirty = mean_drift_statistic(
            level_shift_process(N, np.random.default_rng(rng_seed), mean_run=512),
            segments=32,
        )
        assert dirty > 3.0 * clean

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            mean_drift_statistic(np.full(1024, 5.0), segments=8)
