"""Tests for the time/frequency-domain Hurst estimators on known inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hurst import periodogram_hurst, rs_hurst, variance_time_hurst
from repro.traffic.fgn import generate_fgn

N = 32768


@pytest.fixture(scope="module")
def fgn_08() -> np.ndarray:
    return generate_fgn(N, 0.8, np.random.default_rng(100))


@pytest.fixture(scope="module")
def fgn_05() -> np.ndarray:
    return generate_fgn(N, 0.5, np.random.default_rng(101))


class TestVarianceTime:
    def test_recovers_high_hurst(self, fgn_08):
        estimate = variance_time_hurst(fgn_08)
        # Known negative bias of the variance-time plot; accept a wide band
        # that still separates LRD from SRD.
        assert estimate.hurst == pytest.approx(0.8, abs=0.12)
        assert estimate.method == "variance-time"

    def test_recovers_white_noise(self, fgn_05):
        estimate = variance_time_hurst(fgn_05)
        assert estimate.hurst == pytest.approx(0.5, abs=0.08)

    def test_diagnostics_shapes(self, fgn_08):
        estimate = variance_time_hurst(fgn_08)
        assert estimate.x.shape == estimate.y.shape
        assert estimate.x.size >= 3

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            variance_time_hurst(np.zeros(10) + np.arange(10))

    def test_rejects_constant_series(self):
        with pytest.raises(ValueError, match="constant"):
            variance_time_hurst(np.full(1000, 2.0))


class TestRS:
    def test_recovers_high_hurst(self, fgn_08):
        estimate = rs_hurst(fgn_08)
        assert estimate.hurst == pytest.approx(0.8, abs=0.12)

    def test_white_noise_biased_slightly_high(self, fgn_05):
        # R/S is known to over-estimate at H = 0.5 on short windows.
        estimate = rs_hurst(fgn_05)
        assert 0.45 < estimate.hurst < 0.65

    def test_str_rendering(self, fgn_08):
        assert "R/S" in str(rs_hurst(fgn_08))


class TestPeriodogram:
    def test_recovers_high_hurst(self, fgn_08):
        estimate = periodogram_hurst(fgn_08)
        assert estimate.hurst == pytest.approx(0.8, abs=0.1)

    def test_recovers_white_noise(self, fgn_05):
        estimate = periodogram_hurst(fgn_05)
        assert estimate.hurst == pytest.approx(0.5, abs=0.08)

    def test_bandwidth_validation(self, fgn_08):
        with pytest.raises(ValueError, match="frequency_fraction"):
            periodogram_hurst(fgn_08, frequency_fraction=0.9)

    def test_ordering_separates_h(self):
        low = generate_fgn(N, 0.6, np.random.default_rng(5))
        high = generate_fgn(N, 0.9, np.random.default_rng(5))
        assert periodogram_hurst(high).hurst > periodogram_hurst(low).hurst
