"""Cross-estimator robustness checks on known processes.

These tests treat the five Hurst estimators as a suite and verify the
relationships the self-similarity literature predicts: stability under
aggregation, agreement across estimators on clean fGn, sensitivity to
shuffling, and correct behaviour on FARIMA and on/off-aggregate inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hurst import periodogram_hurst, rs_hurst, variance_time_hurst
from repro.analysis.wavelet import wavelet_hurst
from repro.analysis.whittle import whittle_hurst
from repro.traffic.farima import generate_farima
from repro.traffic.fgn import generate_fgn
from repro.traffic.shuffle import external_shuffle

N = 32768


@pytest.fixture(scope="module")
def fgn_path() -> np.ndarray:
    return generate_fgn(N, 0.8, np.random.default_rng(77))


class TestCrossEstimatorAgreement:
    def test_all_estimators_agree_on_fgn(self, fgn_path):
        estimates = {
            "vt": variance_time_hurst(fgn_path).hurst,
            "rs": rs_hurst(fgn_path).hurst,
            "gph": periodogram_hurst(fgn_path).hurst,
            "whittle": whittle_hurst(fgn_path).hurst,
            "wavelet": wavelet_hurst(fgn_path).hurst,
        }
        for name, value in estimates.items():
            assert value == pytest.approx(0.8, abs=0.12), name
        # The frequency-domain estimators agree tightly with each other.
        assert abs(estimates["whittle"] - estimates["wavelet"]) < 0.08

    def test_estimators_on_farima(self):
        path = generate_farima(N, 0.3, np.random.default_rng(78))  # H = 0.8
        assert whittle_hurst(path).hurst == pytest.approx(0.8, abs=0.08)
        assert wavelet_hurst(path).hurst == pytest.approx(0.8, abs=0.1)


class TestAggregationStability:
    """Self-similarity: the m-aggregated series has the same H."""

    @pytest.mark.parametrize("factor", [4, 16])
    def test_whittle_stable_under_aggregation(self, fgn_path, factor):
        usable = (fgn_path.size // factor) * factor
        aggregated = fgn_path[:usable].reshape(-1, factor).mean(axis=1)
        original = whittle_hurst(fgn_path).hurst
        coarse = whittle_hurst(aggregated).hurst
        assert coarse == pytest.approx(original, abs=0.1)

    def test_white_noise_stays_white_under_aggregation(self):
        path = generate_fgn(N, 0.5, np.random.default_rng(79))
        aggregated = path.reshape(-1, 8).mean(axis=1)
        assert whittle_hurst(aggregated).hurst == pytest.approx(0.5, abs=0.08)


class TestShufflingSensitivity:
    def test_full_permutation_destroys_lrd(self, fgn_path, rng):
        shuffled = external_shuffle(fgn_path, block_length=1, rng=rng)
        before = whittle_hurst(fgn_path).hurst
        after = whittle_hurst(shuffled).hurst
        assert after < before - 0.15
        assert after == pytest.approx(0.5, abs=0.1)

    def test_hurst_recovers_with_block_length(self, fgn_path, rng):
        # Larger shuffle blocks preserve more correlation: H is monotone-ish
        # in the block length, from ~0.5 (permutation) back to the original.
        estimates = [
            whittle_hurst(external_shuffle(fgn_path, block, rng)).hurst
            for block in (1, 8, 512)
        ]
        original = whittle_hurst(fgn_path).hurst
        assert estimates[0] < estimates[1] <= estimates[2] + 0.05
        assert estimates[2] == pytest.approx(original, abs=0.1)

    def test_coarse_shuffle_preserves_most_lrd(self, fgn_path, rng):
        shuffled = external_shuffle(fgn_path, block_length=4096, rng=rng)
        before = wavelet_hurst(fgn_path).hurst
        after = wavelet_hurst(shuffled).hurst
        assert after == pytest.approx(before, abs=0.1)

    def test_variance_time_tracks_shuffle_block(self, fgn_path, rng):
        # Aggregation blocks inside the shuffle block keep the LRD variance
        # decay; the variance-time H of the finely shuffled series drops.
        fine = external_shuffle(fgn_path, block_length=4, rng=rng)
        assert (
            variance_time_hurst(fine, min_block=16).hurst
            < variance_time_hurst(fgn_path, min_block=16).hurst
        )


class TestOnOffAggregateHurst:
    def test_matches_tail_mapping(self, rng):
        from repro.traffic.onoff import aggregate_onoff_rates

        alpha = 1.4  # -> H = 0.8
        rates = aggregate_onoff_rates(
            sources=40, duration=3000.0, bin_width=0.1, rng=rng,
            alpha=alpha, mean_period=0.3,
        )
        estimate = wavelet_hurst(rates, min_octave=3)
        assert estimate.hurst == pytest.approx(0.8, abs=0.15)


class TestModelCovarianceVsEstimators:
    def test_cutoff_source_trace_reads_as_lrd_below_cutoff(self, rng):
        """A cutoff source sampled at scales below T_c looks LRD."""
        from repro.core.marginal import DiscreteMarginal
        from repro.core.source import CutoffFluidSource

        source = CutoffFluidSource.from_hurst(
            marginal=DiscreteMarginal.two_state(0.0, 2.0, 0.5),
            hurst=0.85,
            mean_interval=0.05,
            cutoff=200.0,
        )
        trace = source.rate_trace(duration=1500.0, bin_width=0.05, rng=rng)
        estimate = wavelet_hurst(trace, min_octave=3)
        assert estimate.hurst > 0.65
