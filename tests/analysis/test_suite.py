"""Tests for the all-estimator Hurst suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.suite import HurstSuite, estimate_hurst_suite
from repro.traffic.fgn import generate_fgn
from repro.traffic.spurious import level_shift_process


class TestSuite:
    def test_all_estimators_present_on_long_series(self):
        path = generate_fgn(16384, 0.8, np.random.default_rng(5))
        suite = estimate_hurst_suite(path)
        assert set(suite.estimates) == {
            "variance-time",
            "rs",
            "periodogram",
            "whittle",
            "wavelet",
        }

    def test_median_near_truth_and_small_spread(self):
        path = generate_fgn(32768, 0.8, np.random.default_rng(6))
        suite = estimate_hurst_suite(path)
        assert suite.median == pytest.approx(0.8, abs=0.08)
        assert suite.spread < 0.2

    def test_spread_flags_nonstationarity(self):
        clean = generate_fgn(32768, 0.75, np.random.default_rng(7))
        shifty = level_shift_process(32768, np.random.default_rng(7), mean_run=1024)
        assert estimate_hurst_suite(shifty).spread > estimate_hurst_suite(clean).spread

    def test_short_series_partial_suite(self):
        path = np.random.default_rng(8).standard_normal(200)
        suite = estimate_hurst_suite(path)
        # Whittle needs >= 128 samples, the others vary; some must survive.
        assert len(suite.estimates) >= 2

    def test_summary_keys(self):
        path = generate_fgn(4096, 0.7, np.random.default_rng(9))
        summary = estimate_hurst_suite(path).summary()
        assert "median" in summary and "spread" in summary

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError, match="unsuitable"):
            estimate_hurst_suite(np.full(1024, 2.0))

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HurstSuite(estimates={})
