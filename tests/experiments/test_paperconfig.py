"""Tests for the shared paper-constant module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import paperconfig


class TestConstants:
    def test_utilizations(self):
        assert paperconfig.MTV_UTILIZATION == 0.8
        assert paperconfig.BELLCORE_UTILIZATION == 0.4
        assert paperconfig.FIG9_UTILIZATION == pytest.approx(2.0 / 3.0)

    def test_fig9_setup(self):
        assert paperconfig.FIG9_THETA == pytest.approx(0.020)
        assert paperconfig.FIG9_HURST == 0.9
        assert paperconfig.FIG9_NORMALIZED_BUFFER == 1.0

    def test_histogram_bins(self):
        # "We set the number of bins to 50 in all experiments."
        assert paperconfig.HISTOGRAM_BINS == 50


class TestGrids:
    def test_buffer_grid_range_and_spacing(self):
        grid = paperconfig.buffer_grid(6)
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(5.0)
        ratios = grid[1:] / grid[:-1]
        np.testing.assert_allclose(ratios, ratios[0])  # log-spaced

    def test_cutoff_grid_range(self):
        grid = paperconfig.cutoff_grid(5, low=0.1, high=100.0)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(100.0)
        assert grid.size == 5

    def test_hurst_grid_paper_range(self):
        grid = paperconfig.hurst_grid(5)
        np.testing.assert_allclose(grid, [0.55, 0.65, 0.75, 0.85, 0.95])

    def test_scaling_grid_paper_range(self):
        grid = paperconfig.scaling_grid(5)
        np.testing.assert_allclose(grid, [0.5, 0.75, 1.0, 1.25, 1.5])

    def test_stream_grid_integers(self):
        grid = paperconfig.stream_grid(10, 5)
        assert grid.dtype.kind == "i"
        assert grid[0] == 1
        assert grid[-1] == 10
        assert np.all(np.diff(grid) > 0)
