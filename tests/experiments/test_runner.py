"""Tests for the figure registry's engine plumbing."""

from __future__ import annotations

import pytest

from repro.exec.engine import SweepEngine
from repro.experiments import runner
from repro.experiments.runner import FIGURES, FigureSpec, available_figures, run_figure


def _fake_spec(number: int, supports_engine: bool, captured: dict) -> FigureSpec:
    def build(**kwargs):
        captured.update(kwargs)
        return "data"

    return FigureSpec(
        number=number,
        title="fake",
        build=build,
        render=lambda data: f"rendered {data}",
        supports_engine=supports_engine,
    )


class TestEngineForwarding:
    def test_engine_passed_to_supporting_figures(self, monkeypatch):
        captured: dict = {}
        monkeypatch.setitem(FIGURES, 4, _fake_spec(4, True, captured))
        engine = SweepEngine()
        assert run_figure(4, quick=True, engine=engine) == "rendered data"
        assert captured["engine"] is engine

    def test_engine_withheld_from_non_sweep_figures(self, monkeypatch):
        captured: dict = {}
        monkeypatch.setitem(FIGURES, 2, _fake_spec(2, False, captured))
        run_figure(2, quick=True, engine=SweepEngine())
        assert "engine" not in captured

    def test_no_engine_means_no_kwarg(self, monkeypatch):
        captured: dict = {}
        monkeypatch.setitem(FIGURES, 4, _fake_spec(4, True, captured))
        run_figure(4, quick=True)
        assert "engine" not in captured


class TestRegistry:
    def test_solver_driven_figures_declare_engine_support(self):
        for number in (4, 5, 9, 10, 11, 12, 13):
            assert FIGURES[number].supports_engine, f"figure {number}"
        for number in (2, 3, 6, 7, 8, 14):
            assert not FIGURES[number].supports_engine, f"figure {number}"

    def test_available_figures_covers_the_paper(self):
        assert available_figures() == list(range(2, 15))

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            runner.run_figure(99)
