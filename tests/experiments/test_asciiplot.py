"""Tests for the ASCII visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.asciiplot import heatmap, lineplot
from repro.experiments.sweeps import LossSurface


@pytest.fixture
def surface() -> LossSurface:
    return LossSurface(
        row_label="buffer_s",
        col_label="cutoff_s",
        rows=np.array([0.1, 1.0, 5.0]),
        cols=np.array([1.0, 10.0]),
        losses=np.array([[1e-2, 3e-2], [1e-4, 1e-3], [0.0, 1e-6]]),
    )


class TestHeatmap:
    def test_contains_axes_and_all_rows(self, surface):
        text = heatmap(surface, title="demo")
        assert "demo" in text
        assert "buffer_s" in text and "cutoff_s" in text
        # One line per row plus header/footer lines.
        body = [line for line in text.splitlines() if "|" in line]
        assert len(body) == surface.rows.size

    def test_rows_descending(self, surface):
        body = [line for line in heatmap(surface).splitlines() if "|" in line]
        assert body[0].strip().startswith("5")
        assert body[-1].strip().startswith("0.1")

    def test_zero_cells_blank(self, surface):
        body = [line for line in heatmap(surface).splitlines() if "|" in line]
        top_row = body[0].split("|")[1]
        assert top_row[:2] == "  "  # the zero cell renders as blanks

    def test_higher_loss_darker(self, surface):
        ramp = " .:-=+*#%@"
        body = [line for line in heatmap(surface).splitlines() if "|" in line]
        bottom = body[-1].split("|")[1]
        first, second = bottom[0], bottom[2]
        assert ramp.index(second) >= ramp.index(first)


class TestLineplot:
    def test_renders_markers_and_legend(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        text = lineplot(x, {"a": [1e-4, 1e-3, 1e-2, 1e-1], "b": [1e-2] * 4}, title="t")
        assert "o=a" in text and "x=b" in text
        assert text.count("o") >= 4

    def test_monotone_series_rises(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        text = lineplot(x, {"s": [1e-6, 1e-4, 1e-2, 1.0]}, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        # First column marker near the bottom, last column near the top.
        first_col_rows = [i for i, line in enumerate(rows) if line.split("|")[1][0] == "o"]
        last_col_rows = [
            i for i, line in enumerate(rows) if line.split("|")[1].rstrip().endswith("o")
        ]
        assert min(first_col_rows) > min(last_col_rows)

    def test_validation(self):
        with pytest.raises(ValueError, match="x_values"):
            lineplot(np.array([1.0]), {"a": [1.0]})
        with pytest.raises(ValueError, match="match"):
            lineplot(np.array([1.0, 2.0]), {"a": [1.0]})
        with pytest.raises(ValueError, match="nothing to plot"):
            lineplot(np.array([1.0, 2.0]), {"a": [0.0, 0.0]})


class TestRunner:
    def test_available_figures(self):
        from repro.experiments.runner import available_figures

        assert available_figures() == list(range(2, 15))

    def test_unknown_figure_rejected(self):
        from repro.experiments.runner import run_figure

        with pytest.raises(ValueError, match="unknown figure"):
            run_figure(99)

    def test_run_figure_2_tiny(self):
        from repro.experiments.runner import run_figure

        text = run_figure(2, trace_bins=2048)
        assert "Fig. 2" in text

    def test_run_figure_3_tiny(self):
        from repro.experiments.runner import run_figure

        text = run_figure(3, trace_bins=2048)
        assert "Bellcore marginal" in text
