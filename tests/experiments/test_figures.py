"""Smoke tests for the per-figure data generators (tiny instances)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import SolverConfig
from repro.experiments import figures

TINY = 2048
FAST = SolverConfig(initial_bins=64, max_bins=512, relative_gap=0.5, max_iterations=4_000)


class TestSources:
    def test_trace_caches(self):
        a = figures.mtv_trace(TINY)
        b = figures.mtv_trace(TINY)
        assert a is b

    def test_source_calibration(self):
        source = figures.mtv_source(TINY)
        assert source.hurst == pytest.approx(0.83)
        source = figures.bellcore_source(TINY)
        assert source.hurst == pytest.approx(0.9)


class TestFig02:
    def test_bound_gap_shrinks(self):
        snapshots = figures.fig02_bounds_convergence(
            checkpoints=(5, 10, 30), bins=100, n_frames=TINY
        )
        assert [s.iterations for s in snapshots] == [5, 10, 30]
        gaps = [s.upper_mean - s.lower_mean for s in snapshots]
        assert gaps[0] >= gaps[-1] - 1e-12


class TestFig03:
    def test_marginals_distinct(self):
        data = figures.fig03_marginals(TINY)
        assert data.bellcore_summary["cv"] > data.mtv_summary["cv"]
        assert data.mtv.size <= 50


class TestSurfacesSmall:
    def test_fig04_shape_and_trends(self):
        surface = figures.fig04_loss_surface_mtv(
            buffer_points=2, cutoff_points=2, n_frames=TINY, config=FAST
        )
        assert surface.losses.shape == (2, 2)
        assert np.all(surface.losses >= 0.0)
        # Buffer ineffectiveness direction: bigger buffer never raises loss.
        assert np.all(surface.losses[0] >= surface.losses[-1] - 1e-12)

    def test_fig05_shape(self):
        surface = figures.fig05_loss_surface_bellcore(
            buffer_points=2, cutoff_points=2, n_bins=TINY, config=FAST
        )
        assert surface.losses.shape == (2, 2)

    def test_fig12_scaling_direction(self):
        surface = figures.fig12_buffer_vs_scaling_mtv(
            buffer_points=2, scaling_points=2, n_frames=TINY, config=FAST
        )
        # Narrow marginal column loses less.
        assert np.all(surface.losses[:, 0] <= surface.losses[:, 1] + 1e-12)

    def test_fig13_shape(self):
        surface = figures.fig13_buffer_vs_scaling_bellcore(
            buffer_points=2, scaling_points=2, n_bins=TINY, config=FAST
        )
        assert surface.losses.shape == (2, 2)


class TestFig06:
    def test_decorrelation(self):
        data = figures.fig06_shuffle_decorrelation(
            block_seconds=0.33, max_lag_seconds=3.0, n_frames=TINY
        )
        # At lags beyond the block, shuffled ACF collapses toward zero.
        tail = data.lags_seconds > 2 * data.block_seconds
        assert np.mean(np.abs(data.shuffled_acf[tail])) < np.mean(
            np.abs(data.original_acf[tail])
        )


class TestFig0708:
    def test_fig07_monotone_in_buffer(self):
        surface = figures.fig07_shuffle_surface_mtv(
            buffer_points=3, cutoff_points=2, n_frames=TINY
        )
        assert np.all(np.diff(surface.losses, axis=0) <= 1e-12)

    def test_fig08_shape(self):
        surface = figures.fig08_shuffle_surface_bellcore(
            buffer_points=2, cutoff_points=2, n_bins=TINY
        )
        assert surface.losses.shape == (2, 2)


class TestFig09:
    def test_marginal_dominates(self):
        data = figures.fig09_marginal_comparison(cutoff_points=3, n_bins=TINY, config=FAST)
        # The Bellcore marginal loses strictly more at every cutoff with loss.
        positive = data.mtv_losses + data.bellcore_losses > 0.0
        assert np.all(
            data.bellcore_losses[positive] >= data.mtv_losses[positive]
        )


class TestFig1011:
    def test_fig10_scaling_dominates_hurst(self):
        surface = figures.fig10_hurst_vs_scaling(
            hurst_points=2, scaling_points=2, cutoff=10.0, n_frames=TINY, config=FAST
        )
        assert surface.losses.shape == (2, 2)

    def test_fig11_superposition_reduces_loss(self):
        surface = figures.fig11_hurst_vs_superposition(
            hurst_points=2, max_streams=5, stream_points=2, cutoff=10.0,
            n_frames=TINY, config=FAST,
        )
        # More streams -> less loss, for each Hurst row.
        assert np.all(surface.losses[:, -1] <= surface.losses[:, 0] + 1e-12)


class TestFig14:
    def test_horizon_scaling_outputs(self):
        data = figures.fig14_horizon_scaling(
            buffer_points=3, cutoff_points=4, n_frames=TINY
        )
        assert data.buffers.shape == data.empirical.shape
        assert np.all(data.analytic > 0.0)
        assert np.all(data.norros > 0.0)
        # Norros is exactly linear in B; Eq. 26 (self-consistent at infinite
        # cutoff) is increasing in B.
        ratio = data.norros / data.buffers
        np.testing.assert_allclose(ratio, ratio[0], rtol=1e-6)
        assert np.all(np.diff(data.analytic) > 0.0)
