"""The Experiment DSL: golden fingerprints and bit-identity with sweeps.

Two guarantees matter here.  First, a committed spec must keep compiling
to the exact same :class:`~repro.exec.task.SweepPlan` contents — the
golden file pins every plan's fingerprint (axes plus per-task solve cache
keys), so any accidental change to the DSL lowering *or* the ``plan_*``
builders fails loudly.  Second, a DSL experiment and the equivalent
hand-rolled ``sweep_*`` call must produce bit-identical surfaces through
the engine — not approximately equal, ``np.array_equal``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.solver import SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.experiments import (
    Experiment,
    plan_fingerprint,
    sweep_buffer_cutoff,
    sweep_cutoff,
)

GOLDEN = Path(__file__).parent / "golden" / "dsl_fingerprints.json"

FAST = SolverConfig(
    initial_bins=64, max_bins=512, relative_gap=0.5, max_iterations=5_000
)


def golden_source() -> CutoffFluidSource:
    return CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.05, alpha=1.4, cutoff=2.0),
    )


def golden_experiment() -> Experiment:
    """The committed spec: three group shapes over one fixed source."""
    e = Experiment("golden", "committed DSL spec the fingerprint file pins")
    e.source = golden_source()
    e.utilization = 0.9
    e.config = FAST
    e.seed = 7
    with e.new_group("surface") as g:
        g.buffers = [0.05, 0.2]
        g.cutoffs = [0.5, 2.0]
    with e.new_group("horizon") as g:
        g.cutoffs = [0.25, 1.0, 4.0]
        g.normalized_buffer = 0.1
    with e.new_group("families") as g:
        g.buffers = [0.1, 0.5]
        g.families = ["fgn", "farima", "onoff", "mginf", "mmpp"]
    return e


# --------------------------------------------------------------------- #
# golden fingerprints
# --------------------------------------------------------------------- #


def test_fingerprints_match_golden_file():
    """The committed spec compiles to byte-stable plan fingerprints.

    If this fails because of an *intentional* change to the DSL or the
    plan builders, regenerate with::

        PYTHONPATH=src python -c "
        from tests.experiments.test_dsl import write_golden; write_golden()"
    """
    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert golden_experiment().fingerprints() == expected


def write_golden() -> None:  # pragma: no cover - regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        json.dumps(golden_experiment().fingerprints(), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


def test_fingerprint_is_sensitive_to_the_grid():
    base = golden_experiment().fingerprints()
    changed = golden_experiment()
    changed.groups[0].buffers = [0.05, 0.25]  # one knot moved
    assert changed.fingerprints()["surface"] != base["surface"]
    # ...but untouched groups keep their fingerprints.
    assert changed.fingerprints()["horizon"] == base["horizon"]


def test_fingerprint_is_insensitive_to_meta():
    plan = golden_experiment().compile()["surface"]
    relabeled = plan.__class__(
        tasks=plan.tasks,
        rows=plan.rows,
        cols=plan.cols,
        row_label=plan.row_label,
        col_label=plan.col_label,
        meta={**plan.meta, "note": "descriptive only"},
    )
    assert plan_fingerprint(relabeled) == plan_fingerprint(plan)


# --------------------------------------------------------------------- #
# bit-identity with the imperative sweeps
# --------------------------------------------------------------------- #


def test_dsl_surface_is_bit_identical_to_sweep():
    source = golden_source()
    e = Experiment("vs-sweep")
    e.source = source
    e.utilization = 0.9
    e.config = FAST
    with e.new_group("surface") as g:
        g.buffers = [0.05, 0.2]
        g.cutoffs = [0.5, 2.0]
    surface = e.run()["surface"]
    direct = sweep_buffer_cutoff(
        source, 0.9, np.array([0.05, 0.2]), np.array([0.5, 2.0]), config=FAST
    )
    assert np.array_equal(surface.losses, direct.losses)
    assert np.array_equal(surface.rows, direct.rows)
    assert np.array_equal(surface.cols, direct.cols)
    assert surface.row_label == direct.row_label


def test_dsl_cutoff_grid_is_bit_identical_to_sweep(tmp_path):
    source = golden_source()
    e = Experiment("vs-cutoff")
    e.source = source
    e.utilization = 0.8
    e.config = FAST
    out = tmp_path / "horizon.npz"
    with e.new_group("horizon") as g:
        g.cutoffs = [0.25, 1.0]
        g.normalized_buffer = 0.3
        g.out = str(out)
    surface = e.run()["horizon"]
    direct = sweep_cutoff(source, 0.8, 0.3, np.array([0.25, 1.0]), config=FAST)
    assert np.array_equal(surface.losses, direct.losses)
    assert out.exists()  # `out` saves the surface


# --------------------------------------------------------------------- #
# validation and the comparison spec
# --------------------------------------------------------------------- #


def test_unsupported_axes_are_rejected():
    e = Experiment("bad")
    with pytest.raises(ValueError, match="supported combinations"):
        with e.new_group("g") as g:
            g.buffers = [0.1]
            g.hursts = [0.8]


def test_cutoff_grid_requires_a_buffer():
    e = Experiment("bad")
    with pytest.raises(ValueError, match="normalized_buffer"):
        with e.new_group("g") as g:
            g.cutoffs = [1.0]


def test_unknown_family_is_rejected():
    e = Experiment("bad")
    with pytest.raises(ValueError, match="unknown families"):
        with e.new_group("g") as g:
            g.buffers = [0.1]
            g.families = ["fgn", "poisson"]


def test_unmatchable_moment_is_rejected():
    e = Experiment("bad")
    with pytest.raises(ValueError, match="cannot match"):
        with e.new_group("g") as g:
            g.buffers = [0.1]
            g.families = ["fgn"]
            g.matched = ("mean", "skewness")


def test_duplicate_group_names_are_rejected():
    e = Experiment("dup")
    with e.new_group("g") as g:
        g.cutoffs = [1.0]
        g.normalized_buffer = 0.1
    with pytest.raises(ValueError, match="duplicate"):
        with e.new_group("g") as g:
            g.cutoffs = [2.0]
            g.normalized_buffer = 0.1


def test_compile_requires_source_and_groups():
    empty = Experiment("empty")
    with pytest.raises(ValueError, match="no groups"):
        empty.compile()
    e = Experiment("no-source")
    with e.new_group("g") as g:
        g.cutoffs = [1.0]
        g.normalized_buffer = 0.1
    with pytest.raises(ValueError, match="source"):
        e.compile()


def test_comparison_spec_round_trips():
    e = golden_experiment()
    spec = e.comparison()
    assert spec["source"] is e.source
    assert spec["utilization"] == 0.9
    assert spec["buffers"] == [0.1, 0.5]
    assert spec["families"] == ("fgn", "farima", "onoff", "mginf", "mmpp")
    assert spec["config"] is FAST
    assert spec["seed"] == 7


def test_comparison_requires_a_families_group():
    e = Experiment("plain")
    e.source = golden_source()
    e.utilization = 0.9
    with e.new_group("g") as g:
        g.cutoffs = [1.0]
        g.normalized_buffer = 0.1
    with pytest.raises(ValueError, match="no comparison group"):
        e.comparison()
