"""Tests for the ASCII reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import (
    format_mapping,
    format_series,
    format_surface,
    write_report,
)
from repro.experiments.sweeps import LossSurface


@pytest.fixture
def surface() -> LossSurface:
    return LossSurface(
        row_label="buffer_s",
        col_label="cutoff_s",
        rows=np.array([0.1, 1.0]),
        cols=np.array([1.0, 10.0]),
        losses=np.array([[1e-2, 3e-2], [0.0, 1e-4]]),
        meta={"utilization": 0.8},
    )


class TestFormatSurface:
    def test_contains_axes_and_values(self, surface):
        text = format_surface(surface, title="demo")
        assert "demo" in text
        assert "buffer_s" in text and "cutoff_s" in text
        assert "1.00e-02" in text
        assert "utilization" in text

    def test_zero_rendered_distinctly(self, surface):
        text = format_surface(surface)
        assert "        0" in text

    def test_line_count(self, surface):
        text = format_surface(surface, title="t")
        # title + meta + header + rule + 2 data rows
        assert len(text.splitlines()) == 6


class TestFormatSeries:
    def test_multiple_columns(self):
        text = format_series(
            "x", [1.0, 2.0], {"a": [0.1, 0.2], "b": [0.3, 0.4]}, title="series"
        )
        lines = text.splitlines()
        assert lines[0] == "series"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            format_series("x", [1.0, 2.0], {"a": [0.1]})


class TestFormatMapping:
    def test_alignment(self):
        text = format_mapping({"alpha": 1.34, "very_long_name": 2.0})
        lines = text.splitlines()
        assert lines[0].index("=") == lines[1].index("=")


class TestSurfaceToCsv:
    def test_long_format(self, surface):
        from repro.experiments.reporting import surface_to_csv

        csv = surface_to_csv(surface)
        lines = csv.splitlines()
        assert lines[0] == "buffer_s,cutoff_s,loss"
        assert len(lines) == 1 + surface.rows.size * surface.cols.size
        first = lines[1].split(",")
        assert float(first[0]) == 0.1
        assert float(first[2]) == pytest.approx(1e-2)


class TestWriteReport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "report.txt"
        write_report(str(path), "hello")
        assert path.read_text() == "hello\n"

    def test_no_double_newline(self, tmp_path):
        path = tmp_path / "r.txt"
        write_report(str(path), "hello\n")
        assert path.read_text() == "hello\n"
