"""Tests for the parameter-sweep harness (tiny grids, real code paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import SolverConfig
from repro.experiments.sweeps import (
    LossSurface,
    sweep_buffer_cutoff,
    sweep_buffer_scaling,
    sweep_cutoff,
    sweep_hurst_scaling,
    sweep_hurst_superposition,
)

FAST = SolverConfig(initial_bins=64, max_bins=512, relative_gap=0.5, max_iterations=5_000)


class TestLossSurface:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            LossSurface(
                row_label="a",
                col_label="b",
                rows=np.array([1.0, 2.0]),
                cols=np.array([1.0]),
                losses=np.zeros((1, 1)),
            )

    def test_save_load_round_trip(self, tmp_path):
        surface = LossSurface(
            row_label="buffer_s",
            col_label="cutoff_s",
            rows=np.array([0.1, 1.0]),
            cols=np.array([1.0, 10.0, 100.0]),
            losses=np.arange(6.0).reshape(2, 3) * 1e-3,
            meta={"utilization": 0.8, "trace": "demo"},
        )
        path = str(tmp_path / "surface.npz")
        surface.save(path)
        loaded = LossSurface.load(path)
        assert loaded.row_label == surface.row_label
        np.testing.assert_array_equal(loaded.losses, surface.losses)
        assert loaded.meta["utilization"] == 0.8
        assert loaded.meta["trace"] == "demo"

    def test_save_load_coerces_numpy_meta_scalars(self, tmp_path):
        # Sweeps routinely stash np.float64 values in meta; save() must
        # coerce them so the archive stays loadable without pickle.
        surface = LossSurface(
            row_label="buffer_s",
            col_label="cutoff_s",
            rows=np.array([0.1]),
            cols=np.array([1.0, 10.0]),
            losses=np.array([[1e-3, 2e-3]]),
            meta={"utilization": np.float64(0.8), "hurst": np.float64(0.83)},
        )
        path = str(tmp_path / "surface.npz")
        surface.save(path)
        loaded = LossSurface.load(path)
        assert isinstance(loaded.meta["utilization"], float)
        assert loaded.meta["utilization"] == 0.8
        assert loaded.meta["hurst"] == 0.83

    def test_series_accessors(self):
        surface = LossSurface(
            row_label="a",
            col_label="b",
            rows=np.array([1.0, 2.0]),
            cols=np.array([10.0, 20.0, 30.0]),
            losses=np.arange(6.0).reshape(2, 3),
        )
        cols, row = surface.row_series(1)
        np.testing.assert_allclose(row, [3.0, 4.0, 5.0])
        rows, col = surface.col_series(0)
        np.testing.assert_allclose(col, [0.0, 3.0])


class TestBufferCutoffSweep:
    def test_monotone_structure(self, small_source):
        surface = sweep_buffer_cutoff(
            source=small_source,
            utilization=0.8,
            buffers=np.array([0.05, 0.5]),
            cutoffs=np.array([0.2, 5.0]),
            config=FAST,
        )
        assert surface.losses.shape == (2, 2)
        # Loss decreases with buffer (columns) and increases with cutoff (rows).
        assert np.all(surface.losses[0] >= surface.losses[1] - 1e-12)
        assert np.all(surface.losses[:, 0] <= surface.losses[:, 1] + 1e-12)

    def test_meta_recorded(self, small_source):
        surface = sweep_buffer_cutoff(
            source=small_source,
            utilization=0.8,
            buffers=np.array([0.1]),
            cutoffs=np.array([1.0]),
            config=FAST,
        )
        assert surface.meta["utilization"] == 0.8
        assert surface.meta["hurst"] == pytest.approx(small_source.hurst)


class TestCutoffSweep:
    def test_monotone_in_cutoff(self, small_source):
        surface = sweep_cutoff(
            small_source, 0.8, 0.3, np.array([0.2, 1.0, 4.0]), config=FAST
        )
        assert isinstance(surface, LossSurface)
        assert surface.losses.shape == (1, 3)
        cutoffs, losses = surface.row_series(0)
        np.testing.assert_allclose(cutoffs, [0.2, 1.0, 4.0])
        assert losses.shape == (3,)
        assert losses[0] <= losses[1] + 1e-12 <= losses[2] + 2e-12

    def test_structured_result_metadata(self, small_source):
        surface = sweep_cutoff(
            small_source, 0.8, 0.3, np.array([0.5, 2.0]), config=FAST
        )
        assert surface.row_label == "buffer_s"
        assert surface.col_label == "cutoff_s"
        np.testing.assert_allclose(surface.rows, [0.3])
        assert surface.meta["utilization"] == 0.8
        assert surface.meta["buffer_s"] == 0.3
        assert surface.meta["hurst"] == pytest.approx(small_source.hurst)


class TestMarginalSweeps:
    def test_hurst_scaling_grid(self, three_level_marginal):
        surface = sweep_hurst_scaling(
            marginal=three_level_marginal,
            mean_interval=0.05,
            utilization=0.8,
            normalized_buffer=0.2,
            hursts=np.array([0.6, 0.9]),
            scalings=np.array([0.5, 1.0]),
            cutoff=5.0,
            config=FAST,
        )
        assert surface.losses.shape == (2, 2)
        # Narrower marginal -> lower loss, at both Hurst values.
        assert np.all(surface.losses[:, 0] <= surface.losses[:, 1] + 1e-12)
        # Theta is fixed at the nominal-H calibration.
        assert surface.meta["theta"] > 0.0

    def test_hurst_superposition_grid(self, three_level_marginal):
        surface = sweep_hurst_superposition(
            marginal=three_level_marginal,
            mean_interval=0.05,
            utilization=0.8,
            normalized_buffer=0.2,
            hursts=np.array([0.7]),
            streams=np.array([1, 4]),
            cutoff=5.0,
            config=FAST,
        )
        assert surface.losses.shape == (1, 2)
        # Multiplexing reduces loss.
        assert surface.losses[0, 1] <= surface.losses[0, 0] + 1e-12

    def test_buffer_scaling_grid(self, multi_source):
        surface = sweep_buffer_scaling(
            source=multi_source,
            utilization=0.8,
            buffers=np.array([0.05, 0.5]),
            scalings=np.array([0.5, 1.5]),
            config=FAST,
        )
        assert surface.losses.shape == (2, 2)
        assert np.all(surface.losses[1] <= surface.losses[0] + 1e-12)
