"""Integration: the paper's Section IV claim about Markov models.

"For this type of performance problem, we may choose any model among all
the available models as long as it captures the correlation structure up
to CH."  We verify it end to end: a hyperexponential (Markov) expansion of
the cutoff fluid source, solved with the independent MMFQ spectral method,
must predict a loss rate close to the bounded convolution solver's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import FluidQueue, SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.queueing.markov import fit_hyperexponential, renewal_markov_source
from repro.queueing.mmfq import mmfq_loss_rate

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("cutoff", [1.0, 5.0])
def test_markov_model_matches_cutoff_model(onoff_marginal, cutoff):
    law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=cutoff)
    source = CutoffFluidSource(marginal=onoff_marginal, interarrival=law)
    service_rate, buffer_size = 1.25, 0.5

    queue = FluidQueue(source=source, service_rate=service_rate, buffer_size=buffer_size)
    reference = queue.loss_rate(SolverConfig(relative_gap=0.05))

    fit = fit_hyperexponential(law, phases=12)
    model = renewal_markov_source(onoff_marginal, fit)
    markov_loss = mmfq_loss_rate(model, service_rate, buffer_size)

    # Two entirely different numerical methods and an approximate interval
    # law: agreement within ~25 % relative is the paper's "same loss".
    assert markov_loss == pytest.approx(reference.estimate, rel=0.3)


def test_markov_equivalence_breaks_without_enough_phases(onoff_marginal):
    # A one-phase (exponential) fit cannot capture the heavy-tailed
    # correlation: its loss prediction must be clearly worse than the
    # many-phase fit's.
    law = TruncatedPareto(theta=0.1, alpha=1.3, cutoff=10.0)
    source = CutoffFluidSource(marginal=onoff_marginal, interarrival=law)
    service_rate, buffer_size = 1.25, 1.0
    queue = FluidQueue(source=source, service_rate=service_rate, buffer_size=buffer_size)
    reference = queue.loss_rate(SolverConfig(relative_gap=0.05)).estimate

    rich_fit = fit_hyperexponential(law, phases=12)
    rich = mmfq_loss_rate(
        renewal_markov_source(onoff_marginal, rich_fit), service_rate, buffer_size
    )

    from repro.queueing.markov import HyperexponentialFit

    poor_fit = HyperexponentialFit(
        weights=np.array([1.0]), exit_rates=np.array([1.0 / law.mean])
    )
    poor = mmfq_loss_rate(
        renewal_markov_source(onoff_marginal, poor_fit), service_rate, buffer_size
    )

    assert abs(np.log10(max(rich, 1e-15) / max(reference, 1e-15))) < abs(
        np.log10(max(poor, 1e-15) / max(reference, 1e-15))
    )


def test_footnote2_overflow_bounds_loss(onoff_marginal):
    """Footnote 2: the infinite-buffer overflow probability at level B
    upper-bounds the loss rate of the B-buffer queue — checked across the
    model boundary (cutoff solver vs MMFQ infinite-buffer solution of the
    fitted Markov source)."""
    from repro.queueing.mmfq import mmfq_overflow_probability

    law = TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)
    source = CutoffFluidSource(marginal=onoff_marginal, interarrival=law)
    service_rate = 1.4  # utilization ~0.71: stable for the infinite queue
    fit = fit_hyperexponential(law, phases=12)
    model = renewal_markov_source(onoff_marginal, fit)
    for buffer_size in (0.3, 1.0, 3.0):
        queue = FluidQueue(
            source=source, service_rate=service_rate, buffer_size=buffer_size
        )
        loss = queue.loss_rate(SolverConfig(relative_gap=0.1)).estimate
        overflow = float(
            mmfq_overflow_probability(model, service_rate, np.array([buffer_size]))[0]
        )
        assert overflow >= loss * 0.9, (buffer_size, overflow, loss)


def test_markov_covariance_matches_up_to_cutoff(onoff_marginal):
    law = TruncatedPareto(theta=0.05, alpha=1.3, cutoff=20.0)
    source = CutoffFluidSource(marginal=onoff_marginal, interarrival=law)
    fit = fit_hyperexponential(law, phases=12)
    model = renewal_markov_source(onoff_marginal, fit)
    lags = np.logspace(-2, np.log10(law.cutoff * 0.5), 12)
    exact = np.asarray(source.autocovariance(lags))
    markov = model.rate_autocovariance(lags)
    np.testing.assert_allclose(markov, exact, atol=0.08 * source.rate_variance)
