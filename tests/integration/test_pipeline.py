"""Integration: the full trace -> calibration -> solver -> horizon pipeline.

Exercises the complete workflow a user of the library follows, end to end,
on short synthetic traces — including the paper's three headline findings
at miniature scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.whittle import whittle_hurst
from repro.core.horizon import correlation_horizon, empirical_horizon
from repro.core.solver import SolverConfig, solve_loss_rate
from repro.experiments.sweeps import sweep_cutoff
from repro.queueing.fluid_sim import simulate_trace_queue_multi
from repro.traffic.shuffle import shuffle_trace

pytestmark = pytest.mark.slow

FAST = SolverConfig(relative_gap=0.2, max_iterations=30_000)


def test_full_pipeline_mtv(mtv_trace_small):
    # 1. Estimate H from the trace.
    estimate = whittle_hurst(mtv_trace_small.rates)
    assert 0.6 < estimate.hurst < 1.0
    # 2. Calibrate the model.
    source = mtv_trace_small.to_source(hurst=estimate.hurst)
    assert source.mean_rate == pytest.approx(mtv_trace_small.mean_rate, rel=0.02)
    # 3. Solve for loss across cutoffs at fixed buffer.
    cutoffs = np.array([0.2, 1.0, 5.0, 25.0])
    _, losses = sweep_cutoff(source, utilization=0.85, normalized_buffer=0.3,
                             cutoffs=cutoffs, config=FAST).row_series(0)
    assert np.all(np.diff(losses) >= -1e-12)  # more correlation, more loss
    # 4. The analytic horizon lands within the swept range's magnitude.
    service_rate = source.mean_rate / 0.85
    horizon = correlation_horizon(source, buffer_size=0.3 * service_rate)
    assert 1e-3 < horizon < 1e3


def test_correlation_horizon_observable_in_model(small_source):
    """Headline 1: loss stops growing once the cutoff exceeds the horizon."""
    cutoffs = np.array([0.05, 0.2, 1.0, 4.0, 16.0, 64.0])
    _, losses = sweep_cutoff(
        small_source, utilization=0.9, normalized_buffer=0.05, cutoffs=cutoffs, config=FAST
    ).row_series(0)
    horizon = empirical_horizon(cutoffs, losses, relative_band=0.25)
    # Small buffer -> short horizon: the plateau must start well before the
    # largest cutoff swept.
    assert horizon < cutoffs[-1]


def test_marginal_dominates_hurst_in_model(three_level_marginal):
    """Headline 2: scaling the marginal moves loss more than changing H."""
    from repro.core.source import CutoffFluidSource

    def loss(hurst, scale):
        source = CutoffFluidSource.from_hurst(
            marginal=three_level_marginal.scaled(scale),
            hurst=hurst,
            mean_interval=0.05,
            cutoff=20.0,
        )
        return solve_loss_rate(source, 0.8, 0.5, config=FAST).estimate

    hurst_effect = abs(np.log10(max(loss(0.9, 1.0), 1e-12) / max(loss(0.6, 1.0), 1e-12)))
    scale_effect = abs(np.log10(max(loss(0.75, 1.4), 1e-12) / max(loss(0.75, 0.6), 1e-12)))
    assert scale_effect > hurst_effect


def test_buffer_ineffectiveness_for_long_correlation(small_source):
    """Headline 3: with long correlation, buffers stop paying off."""
    short = small_source.with_cutoff(0.2)
    long = small_source.with_cutoff(20.0)
    buffers = (0.1, 2.0)

    def decades_gained(source):
        a = solve_loss_rate(source, 0.85, buffers[0], config=FAST).estimate
        b = solve_loss_rate(source, 0.85, buffers[1], config=FAST).estimate
        return np.log10(max(a, 1e-14)) - np.log10(max(b, 1e-14))

    assert decades_gained(short) > decades_gained(long)


def test_shuffle_simulation_agrees_with_model(mtv_trace_small):
    """Figs. 4 vs 7: the model tracks the shuffled-trace simulation."""
    utilization = 0.8
    service_rate = mtv_trace_small.mean_rate / utilization
    buffers_seconds = np.array([0.05, 0.5])
    cutoff = 0.5
    rng = np.random.default_rng(99)
    shuffled = shuffle_trace(mtv_trace_small, cutoff_lag=cutoff, rng=rng)
    simulated = simulate_trace_queue_multi(
        shuffled.rates, mtv_trace_small.bin_width, service_rate,
        buffers_seconds * service_rate,
    )
    source = mtv_trace_small.to_source(hurst=0.83, cutoff=cutoff)
    for buffer_seconds, sim_loss in zip(buffers_seconds, simulated):
        model_loss = solve_loss_rate(source, utilization, float(buffer_seconds), config=FAST)
        if sim_loss > 1e-6 and model_loss.estimate > 1e-6:
            # Same order of magnitude is the paper's own agreement level.
            assert abs(np.log10(model_loss.estimate / sim_loss)) < 1.5
