"""Integration: capacity planning verified against independent simulation.

The effective-bandwidth answer from :mod:`repro.queueing.dimensioning`
wraps the solver's *upper* bound, so a trace-driven simulation of the
dimensioned link must meet the loss target (within Monte Carlo noise).
"""

from __future__ import annotations

import pytest

from repro.core.solver import SolverConfig
from repro.queueing.dimensioning import required_buffer, required_service_rate
from repro.queueing.fluid_sim import simulate_source_queue

pytestmark = pytest.mark.slow

FAST = SolverConfig(relative_gap=0.2, max_iterations=40_000)


def test_effective_bandwidth_holds_in_simulation(small_source, rng):
    target = 5e-3
    buffer_seconds = 0.5
    bandwidth = required_service_rate(small_source, buffer_seconds, target, config=FAST)
    sim = simulate_source_queue(
        small_source,
        service_rate=bandwidth,
        buffer_size=buffer_seconds * bandwidth,
        intervals=400_000,
        rng=rng,
        warmup_intervals=5_000,
    )
    # Upper-bound-based dimensioning: the simulated loss must not exceed
    # the target by more than MC noise.
    assert sim.loss_rate <= target * 1.3


def test_required_buffer_holds_in_simulation(small_source, rng):
    target = 1e-2
    utilization = 0.75
    buffer_seconds = required_buffer(
        small_source, utilization=utilization, target_loss=target,
        max_normalized_buffer=20.0, config=FAST,
    )
    assert buffer_seconds is not None
    service_rate = small_source.mean_rate / utilization
    sim = simulate_source_queue(
        small_source,
        service_rate=service_rate,
        buffer_size=buffer_seconds * service_rate,
        intervals=400_000,
        rng=rng,
        warmup_intervals=5_000,
    )
    assert sim.loss_rate <= target * 1.3


def test_dimensioning_consistent_with_horizon(small_source):
    """Longer correlation demands more bandwidth at the same target."""
    target = 1e-3
    short = required_service_rate(
        small_source.with_cutoff(0.2), 0.5, target, config=FAST
    )
    long = required_service_rate(
        small_source.with_cutoff(5.0), 0.5, target, config=FAST
    )
    assert long >= short - 1e-9


def test_trace_to_dimensioning_pipeline(mtv_trace_small):
    """Trace -> calibrated source -> effective bandwidth, end to end."""
    source = mtv_trace_small.to_source(hurst=0.83, cutoff=10.0, bins=20)
    bandwidth = required_service_rate(source, 0.2, 1e-4, config=FAST)
    assert source.mean_rate < bandwidth <= source.marginal.peak
    # Sanity: the implied utilization is meaningful for video.
    assert 0.3 < source.mean_rate / bandwidth < 1.0
