"""Integration: the bounded solver against Monte Carlo ground truth.

These are the strongest correctness checks in the suite: the solver's
rigorous bounds must bracket (within Monte Carlo noise) the loss rate of a
direct event-driven simulation of the same model, across marginals,
cutoffs, utilizations and buffer sizes.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.solver import FluidQueue, SolverConfig
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.queueing.fluid_sim import simulate_source_queue

pytestmark = pytest.mark.slow

CONFIG = SolverConfig(relative_gap=0.1)


def _check_brackets(source, service_rate, buffer_size, seed, intervals=250_000):
    queue = FluidQueue(source=source, service_rate=service_rate, buffer_size=buffer_size)
    result = queue.loss_rate(CONFIG)
    assert result.converged
    sim = simulate_source_queue(
        source,
        service_rate,
        buffer_size,
        intervals=intervals,
        rng=np.random.default_rng(seed),
        warmup_intervals=5_000,
    )
    slack = max(0.08 * sim.loss_rate, 2e-4)
    assert result.lower - slack <= sim.loss_rate <= result.upper + slack, (
        f"simulated {sim.loss_rate} outside bounds "
        f"[{result.lower}, {result.upper}] (slack {slack})"
    )
    return result, sim


@pytest.mark.parametrize(
    "cutoff,seed",
    [(0.5, 10), (2.0, 11), (10.0, 12)],
)
def test_onoff_across_cutoffs(onoff_marginal, cutoff, seed):
    source = CutoffFluidSource(
        marginal=onoff_marginal,
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=cutoff),
    )
    _check_brackets(source, service_rate=1.25, buffer_size=0.8, seed=seed)


@pytest.mark.parametrize("utilization,seed", [(0.6, 20), (0.85, 21), (0.95, 22)])
def test_onoff_across_utilizations(onoff_marginal, utilization, seed):
    source = CutoffFluidSource(
        marginal=onoff_marginal,
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=4.0),
    )
    service_rate = source.mean_rate / utilization
    _check_brackets(source, service_rate=service_rate, buffer_size=0.5, seed=seed)


@pytest.mark.parametrize("buffer_size,seed", [(0.1, 30), (1.0, 31), (3.0, 32)])
def test_onoff_across_buffers(onoff_marginal, buffer_size, seed):
    source = CutoffFluidSource(
        marginal=onoff_marginal,
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=6.0),
    )
    _check_brackets(source, service_rate=1.2, buffer_size=buffer_size, seed=seed)


def test_multilevel_marginal(three_level_marginal):
    source = CutoffFluidSource(
        marginal=three_level_marginal,
        interarrival=TruncatedPareto(theta=0.05, alpha=1.3, cutoff=3.0),
    )
    _check_brackets(source, service_rate=1.5, buffer_size=0.6, seed=40)


def test_histogram_marginal_from_synthetic_trace(mtv_trace_small):
    source = mtv_trace_small.to_source(hurst=0.83, cutoff=2.0, bins=20)
    service_rate = source.mean_rate / 0.85
    _check_brackets(source, service_rate=service_rate, buffer_size=0.2 * service_rate, seed=41)


def test_infinite_cutoff_against_simulation(onoff_marginal):
    source = CutoffFluidSource(
        marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.5)
    )
    _check_brackets(source, service_rate=1.3, buffer_size=0.5, seed=42, intervals=400_000)


def test_heavy_hurst_against_simulation(onoff_marginal):
    # H = 0.9 (alpha = 1.2): the hardest regime for both solver and MC.
    source = CutoffFluidSource(
        marginal=onoff_marginal, interarrival=TruncatedPareto(theta=0.1, alpha=1.2, cutoff=5.0)
    )
    _check_brackets(source, service_rate=1.4, buffer_size=0.5, seed=43, intervals=400_000)
