"""End-to-end: HTTP serving over a warm process pool with a shared cache.

The acceptance scenario for the serving layer: a 4-worker pool, 100
concurrent requests spread over 10 distinct tasks, and the ``/stats``
endpoint proving that coalescing plus the persistent cache held backend
work to exactly 10 solves.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exec import ProcessPoolBackend, SolveCache, SweepEngine
from repro.serve import QueryService, ServeClient, make_server

pytestmark = pytest.mark.slow

QUICK = {"hurst": 0.7, "cutoff": 2.0, "initial_bins": 32, "max_bins": 64,
         "relative_gap": 0.5}
DISTINCT_TASKS = 10
TOTAL_REQUESTS = 100


def test_hundred_concurrent_requests_ten_backend_solves(tmp_path):
    engine = SweepEngine(
        backend=ProcessPoolBackend(jobs=4),
        cache=SolveCache(tmp_path / "serve-cache"),
    )
    service = QueryService(engine, batch_size=8, batch_delay_s=0.01, max_queue=512)
    server = make_server("127.0.0.1", 0, service).start_background()
    client = ServeClient(f"http://127.0.0.1:{server.port}", timeout_s=120.0)
    try:
        client.wait_until_ready(timeout_s=10.0)

        def ask(i: int) -> dict:
            # 100 requests cycling over 10 distinct buffers.
            buffer = 0.30 + 0.02 * (i % DISTINCT_TASKS)
            return client.loss(buffer=buffer, **QUICK)

        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(pool.map(ask, range(TOTAL_REQUESTS)))

        assert len(responses) == TOTAL_REQUESTS
        assert all(r["ok"] for r in responses)
        estimates = {r["result"]["estimate"] for r in responses}
        assert len(estimates) == DISTINCT_TASKS  # one shared answer per task

        stats = client.stats()
        # Exactly ten cells ever reached the backend: every other request
        # joined an in-flight window (singleflight), replayed from the
        # memory LRU, or hit the disk cache inside the engine.
        assert stats["engine"]["cache_misses"] == DISTINCT_TASKS
        inflight_joins = stats["singleflight"]["hits"]
        memory_hits = stats["memory_lru"]["hits"]
        disk_hits = int(stats["engine"]["cache_hits"])
        assert inflight_joins + memory_hits + disk_hits == TOTAL_REQUESTS - DISTINCT_TASKS
        assert stats["singleflight"]["leaders"] == DISTINCT_TASKS
        assert stats["memory_lru"]["entries"] == DISTINCT_TASKS
        assert stats["memory_lru"]["evictions"] == 0
        assert stats["completed"] == TOTAL_REQUESTS
        assert stats["errors"] == 0
        assert stats["timeouts"] == 0
        assert stats["cache"]["entries"] == DISTINCT_TASKS
    finally:
        server.close()  # graceful drain

    # The cache file survives the server for the next process.
    reopened = SolveCache(tmp_path / "serve-cache")
    assert len(reopened) == DISTINCT_TASKS


def test_identical_results_across_serving_and_direct_solve(tmp_path):
    """What the service returns is exactly what the library computes."""
    from repro.serve.protocol import parse_request

    request = parse_request({"kind": "loss", "buffer": 0.3, **QUICK})
    direct = request.task().run()

    engine = SweepEngine(cache=SolveCache(tmp_path / "verify-cache"))
    service = QueryService(engine, batch_size=2, batch_delay_s=0.005)
    server = make_server("127.0.0.1", 0, service).start_background()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    try:
        client.wait_until_ready(timeout_s=10.0)
        served = client.loss(buffer=0.3, **QUICK)["result"]
    finally:
        server.close()

    assert served["lower"] == direct.lower  # bit-exact through JSON
    assert served["upper"] == direct.upper
    assert served["iterations"] == direct.iterations
