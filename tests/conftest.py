"""Shared fixtures: small, fast model instances reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.traffic.ethernet import synthesize_bellcore_trace
from repro.traffic.video import synthesize_mtv_trace


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def onoff_marginal() -> DiscreteMarginal:
    """The familiar two-state on/off marginal (mean 1, variance 1)."""
    return DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])


@pytest.fixture
def three_level_marginal() -> DiscreteMarginal:
    """A small multi-level marginal (mean 1.1)."""
    return DiscreteMarginal(rates=[0.0, 1.0, 4.0], probs=[0.3, 0.5, 0.2])


@pytest.fixture
def pareto_law() -> TruncatedPareto:
    """A finite-cutoff interarrival law with moderate tail weight."""
    return TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0)


@pytest.fixture
def small_source(onoff_marginal, pareto_law) -> CutoffFluidSource:
    """On/off source with the finite-cutoff Pareto law."""
    return CutoffFluidSource(marginal=onoff_marginal, interarrival=pareto_law)


@pytest.fixture
def multi_source(three_level_marginal, pareto_law) -> CutoffFluidSource:
    """Three-level source with the finite-cutoff Pareto law."""
    return CutoffFluidSource(marginal=three_level_marginal, interarrival=pareto_law)


@pytest.fixture(scope="session")
def mtv_trace_small():
    """Short synthetic MTV trace shared across tests (expensive to build)."""
    return synthesize_mtv_trace(n_frames=4096)


@pytest.fixture(scope="session")
def bellcore_trace_small():
    """Short synthetic Bellcore trace shared across tests."""
    return synthesize_bellcore_trace(n_bins=4096)
