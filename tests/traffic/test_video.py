"""Tests for the synthetic MTV trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.wavelet import wavelet_hurst
from repro.traffic.video import MTV_FRAME_INTERVAL, MTV_MEAN_RATE, synthesize_mtv_trace


class TestSynthesis:
    def test_defaults(self, mtv_trace_small):
        assert mtv_trace_small.bin_width == pytest.approx(MTV_FRAME_INTERVAL)
        assert mtv_trace_small.name == "MTV-synthetic"
        assert np.all(mtv_trace_small.rates > 0.0)

    def test_mean_near_target(self, mtv_trace_small):
        # LRD sample means wander; 15 % is a generous but meaningful band.
        assert mtv_trace_small.mean_rate == pytest.approx(MTV_MEAN_RATE, rel=0.15)

    def test_reproducible_by_seed(self):
        a = synthesize_mtv_trace(n_frames=512, seed=1)
        b = synthesize_mtv_trace(n_frames=512, seed=1)
        np.testing.assert_array_equal(a.rates, b.rates)
        c = synthesize_mtv_trace(n_frames=512, seed=2)
        assert not np.array_equal(a.rates, c.rates)

    def test_explicit_rng_wins_over_seed(self, rng):
        a = synthesize_mtv_trace(n_frames=512, rng=np.random.default_rng(7), seed=1)
        b = synthesize_mtv_trace(n_frames=512, rng=np.random.default_rng(7), seed=2)
        np.testing.assert_array_equal(a.rates, b.rates)

    def test_marginal_is_compact(self, mtv_trace_small):
        # Video CV ~ 0.3: a compact unimodal marginal (unlike Bellcore).
        cv = mtv_trace_small.rate_std / mtv_trace_small.mean_rate
        assert 0.15 < cv < 0.5

    def test_hurst_near_target(self):
        trace = synthesize_mtv_trace(n_frames=16384, seed=42)
        estimate = wavelet_hurst(trace.rates)
        assert estimate.hurst == pytest.approx(0.83, abs=0.12)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_frames"):
            synthesize_mtv_trace(n_frames=1)
        with pytest.raises(ValueError, match="hurst"):
            synthesize_mtv_trace(n_frames=128, hurst=0.4)
        with pytest.raises(ValueError, match="gamma_shape"):
            synthesize_mtv_trace(n_frames=128, gamma_shape=0.0)
