"""Tests for the exact interval-to-bin busy-time accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic._intervals import binned_busy_time


class TestBinnedBusyTime:
    def test_single_interval_spanning_bins(self):
        busy = binned_busy_time(
            np.array([0.5]), np.array([2.5]), np.array([0.0, 1.0, 2.0, 3.0])
        )
        np.testing.assert_allclose(busy, [0.5, 1.0, 0.5])

    def test_interval_inside_one_bin(self):
        busy = binned_busy_time(np.array([1.2]), np.array([1.4]), np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(busy, [0.0, 0.2], atol=1e-12)

    def test_overlapping_intervals_add(self):
        busy = binned_busy_time(
            np.array([0.0, 0.5]), np.array([1.0, 1.5]), np.array([0.0, 1.0, 2.0])
        )
        np.testing.assert_allclose(busy, [1.5, 0.5])

    def test_interval_outside_grid_ignored(self):
        busy = binned_busy_time(np.array([5.0]), np.array([6.0]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(busy, [0.0])

    def test_empty_intervals(self):
        busy = binned_busy_time(np.array([]), np.array([]), np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(busy, [0.0, 0.0])

    def test_zero_length_interval(self):
        busy = binned_busy_time(np.array([0.5]), np.array([0.5]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(busy, [0.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="end >= start"):
            binned_busy_time(np.array([1.0]), np.array([0.5]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="increasing"):
            binned_busy_time(np.array([0.0]), np.array([1.0]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="same shape"):
            binned_busy_time(np.array([0.0]), np.array([1.0, 2.0]), np.array([0.0, 1.0]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_busy_time_conserved(self, raw_intervals, n_bins):
        starts = np.array([s for s, _ in raw_intervals])
        ends = starts + np.array([d for _, d in raw_intervals])
        edges = np.linspace(0.0, 15.0, n_bins + 1)
        busy = binned_busy_time(starts, ends, edges)
        # All intervals lie inside the grid, so per-bin overlaps must add up
        # to the total interval length.
        assert busy.sum() == pytest.approx((ends - starts).sum(), abs=1e-8)
        assert np.all(busy >= 0.0)
        assert np.all(busy <= np.diff(edges) * len(raw_intervals) + 1e-9)
