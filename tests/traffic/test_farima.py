"""Tests for the FARIMA(0, d, 0) generator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.acf import autocovariance
from repro.traffic.farima import (
    d_from_hurst,
    farima_autocovariance,
    generate_farima,
    hurst_from_d,
)


class TestAutocovariance:
    def test_lag_zero_closed_form(self):
        d = 0.3
        gamma = farima_autocovariance(d, 5)
        expected = math.gamma(1 - 2 * d) / math.gamma(1 - d) ** 2
        assert gamma[0] == pytest.approx(expected)

    def test_ratio_recursion(self):
        d = 0.2
        gamma = farima_autocovariance(d, 10)
        for k in range(1, 10):
            assert gamma[k] / gamma[k - 1] == pytest.approx((k - 1 + d) / (k - d))

    def test_d_zero_limit_is_white(self):
        gamma = farima_autocovariance(1e-9, 5)
        assert gamma[0] == pytest.approx(1.0, rel=1e-6)
        assert abs(gamma[1]) < 1e-6

    def test_negative_d_alternates(self):
        gamma = farima_autocovariance(-0.3, 3)
        assert gamma[1] < 0.0

    def test_power_law_tail(self):
        d = 0.35
        gamma = farima_autocovariance(d, 8000)
        k = 4000
        ratio = gamma[k] / gamma[k // 2]
        assert ratio == pytest.approx(2.0 ** (2 * d - 1), rel=0.01)

    def test_innovation_variance_scales(self):
        base = farima_autocovariance(0.2, 4)
        scaled = farima_autocovariance(0.2, 4, innovation_variance=4.0)
        np.testing.assert_allclose(scaled, 4.0 * base)

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError, match="d"):
            farima_autocovariance(0.5, 5)


class TestGenerator:
    def test_normalized_moments(self, rng):
        path = generate_farima(32768, 0.3, rng, mean=1.0, std=0.5)
        assert path.std() == pytest.approx(0.5, rel=0.1)

    def test_acf_matches_theory(self, rng):
        d = 0.25
        path = generate_farima(65536, d, rng)
        empirical = autocovariance(path, 2)
        theory = farima_autocovariance(d, 3)
        np.testing.assert_allclose(
            empirical / empirical[0], theory / theory[0], atol=0.05
        )

    def test_rejects_short(self, rng):
        with pytest.raises(ValueError, match="length"):
            generate_farima(1, 0.3, rng)


class TestHurstMapping:
    def test_round_trip(self):
        assert hurst_from_d(0.3) == pytest.approx(0.8)
        assert d_from_hurst(0.8) == pytest.approx(0.3)
        assert hurst_from_d(d_from_hurst(0.67)) == pytest.approx(0.67)

    def test_bounds(self):
        with pytest.raises(ValueError):
            hurst_from_d(0.5)
        with pytest.raises(ValueError):
            d_from_hurst(1.0)
