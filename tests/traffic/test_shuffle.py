"""Tests for external/internal block shuffling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acf import autocorrelation
from repro.traffic.shuffle import external_shuffle, internal_shuffle, shuffle_trace
from repro.traffic.trace import Trace


class TestExternalShuffle:
    def test_preserves_multiset(self, rng):
        values = np.arange(100.0)
        shuffled = external_shuffle(values, 7, rng)
        np.testing.assert_allclose(np.sort(shuffled), values)

    def test_preserves_intra_block_order(self, rng):
        values = np.arange(100.0)
        shuffled = external_shuffle(values, 10, rng)
        blocks = shuffled[:100].reshape(10, 10)
        for block in blocks:
            assert np.all(np.diff(block) == 1.0)  # consecutive integers

    def test_block_longer_than_series_is_identity(self, rng):
        values = np.arange(10.0)
        np.testing.assert_allclose(external_shuffle(values, 50, rng), values)

    def test_remainder_stays_at_end(self, rng):
        values = np.arange(23.0)
        shuffled = external_shuffle(values, 5, rng)
        np.testing.assert_allclose(shuffled[-3:], [20.0, 21.0, 22.0])

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ValueError, match="block_length"):
            external_shuffle(np.arange(10.0), 0, rng)

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_multiset_invariant_property(self, block, seed):
        values = np.random.default_rng(1).normal(size=97)
        shuffled = external_shuffle(values, block, np.random.default_rng(seed))
        np.testing.assert_allclose(np.sort(shuffled), np.sort(values))


class TestInternalShuffle:
    def test_preserves_block_membership(self, rng):
        values = np.arange(100.0)
        shuffled = internal_shuffle(values, 10, rng)
        for b in range(10):
            block = shuffled[10 * b : 10 * (b + 1)]
            np.testing.assert_allclose(np.sort(block), values[10 * b : 10 * (b + 1)])

    def test_block_one_is_identity(self, rng):
        values = np.arange(10.0)
        np.testing.assert_allclose(internal_shuffle(values, 1, rng), values)


class TestShuffleTrace:
    def test_decorrelation_beyond_block(self, rng):
        # A strongly correlated series: slow sinusoid + noise.
        n = 8192
        t = np.arange(n)
        series = 5.0 + np.sin(2 * np.pi * t / 512.0) + 0.1 * rng.standard_normal(n)
        trace = Trace(rates=series, bin_width=0.01)
        shuffled = shuffle_trace(trace, cutoff_lag=0.16, rng=rng)  # 16-sample blocks
        long_lag = 512
        original = autocorrelation(trace.rates, long_lag)[long_lag]
        mixed = autocorrelation(shuffled.rates, long_lag)[long_lag]
        assert abs(mixed) < abs(original) / 3.0

    def test_short_lag_structure_survives(self, rng):
        n = 8192
        t = np.arange(n)
        series = 5.0 + np.sin(2 * np.pi * t / 64.0)
        trace = Trace(rates=series, bin_width=0.01)
        shuffled = shuffle_trace(trace, cutoff_lag=10.0, rng=rng)  # huge blocks
        lag = 8
        original = autocorrelation(trace.rates, lag)[lag]
        mixed = autocorrelation(shuffled.rates, lag)[lag]
        assert mixed == pytest.approx(original, abs=0.1)

    def test_preserves_mean_and_length(self, mtv_trace_small, rng):
        shuffled = shuffle_trace(mtv_trace_small, cutoff_lag=1.0, rng=rng)
        assert shuffled.n_bins == mtv_trace_small.n_bins
        assert shuffled.mean_rate == pytest.approx(mtv_trace_small.mean_rate)
        assert shuffled.bin_width == mtv_trace_small.bin_width

    def test_rejects_nonpositive_lag(self, mtv_trace_small, rng):
        with pytest.raises(ValueError, match="cutoff_lag"):
            shuffle_trace(mtv_trace_small, cutoff_lag=0.0, rng=rng)
