"""Tests for the synthetic Bellcore trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import coefficient_of_variation
from repro.traffic.ethernet import (
    BELLCORE_BIN_WIDTH,
    BELLCORE_LINK_RATE,
    BELLCORE_MEAN_RATE,
    synthesize_bellcore_trace,
)


class TestSynthesis:
    def test_defaults(self, bellcore_trace_small):
        assert bellcore_trace_small.bin_width == pytest.approx(BELLCORE_BIN_WIDTH)
        assert bellcore_trace_small.name == "Bellcore-synthetic"

    def test_respects_link_rate(self, bellcore_trace_small):
        assert bellcore_trace_small.peak_rate <= BELLCORE_LINK_RATE + 1e-9
        assert np.all(bellcore_trace_small.rates >= 0.0)

    def test_mean_restored_after_clipping(self):
        trace = synthesize_bellcore_trace(n_bins=16384, seed=3)
        assert trace.mean_rate == pytest.approx(BELLCORE_MEAN_RATE, rel=0.02)

    def test_reproducible_by_seed(self):
        a = synthesize_bellcore_trace(n_bins=512, seed=1)
        b = synthesize_bellcore_trace(n_bins=512, seed=1)
        np.testing.assert_array_equal(a.rates, b.rates)

    def test_burstier_than_video(self, bellcore_trace_small, mtv_trace_small):
        # The property Fig. 9 exploits: the Ethernet marginal is much wider
        # relative to its mean than the video marginal.
        bc_cv = coefficient_of_variation(bellcore_trace_small.marginal(50))
        mtv_cv = coefficient_of_variation(mtv_trace_small.marginal(50))
        assert bc_cv > 2.0 * mtv_cv

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_bins"):
            synthesize_bellcore_trace(n_bins=1)
        with pytest.raises(ValueError, match="link rate"):
            synthesize_bellcore_trace(n_bins=128, mean_rate=20.0)
