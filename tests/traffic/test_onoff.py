"""Tests for heavy-tailed on/off source aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.truncated_pareto import TruncatedPareto
from repro.traffic.onoff import OnOffSource, aggregate_onoff_rates


@pytest.fixture
def source() -> OnOffSource:
    return OnOffSource.symmetric(alpha=1.4, mean_period=0.5, peak_rate=2.0)


class TestOnOffSource:
    def test_symmetric_mean_rate(self, source):
        # Identical on/off laws: on half the time.
        assert source.mean_rate == pytest.approx(1.0)

    def test_hurst_mapping(self, source):
        assert source.hurst == pytest.approx((3.0 - 1.4) / 2.0)

    def test_hurst_uses_heavier_tail(self):
        on = TruncatedPareto.from_mean_interval(0.5, alpha=1.8)
        off = TruncatedPareto.from_mean_interval(0.5, alpha=1.2)
        source = OnOffSource(on_law=on, off_law=off, peak_rate=1.0)
        assert source.hurst == pytest.approx((3.0 - 1.2) / 2.0)

    def test_rejects_bad_peak(self):
        law = TruncatedPareto.from_mean_interval(0.5, alpha=1.5)
        with pytest.raises(ValueError, match="peak_rate"):
            OnOffSource(on_law=law, off_law=law, peak_rate=0.0)

    def test_on_intervals_within_window(self, source, rng):
        starts, ends = source.on_intervals(duration=100.0, rng=rng)
        assert np.all(starts >= 0.0)
        assert np.all(ends <= 100.0)
        assert np.all(ends >= starts)
        # Disjoint and ordered per source.
        assert np.all(starts[1:] >= ends[:-1] - 1e-12)

    def test_on_fraction_near_half(self, source, rng):
        starts, ends = source.on_intervals(duration=4000.0, rng=rng)
        fraction = (ends - starts).sum() / 4000.0
        assert fraction == pytest.approx(0.5, abs=0.12)  # heavy tails converge slowly


class TestAggregate:
    def test_shape_and_nonnegativity(self, rng):
        rates = aggregate_onoff_rates(
            sources=5, duration=20.0, bin_width=0.1, rng=rng, alpha=1.5, mean_period=0.3
        )
        assert rates.shape == (200,)
        assert np.all(rates >= 0.0)
        assert np.all(rates <= 5.0 + 1e-9)

    def test_mean_rate(self, rng):
        rates = aggregate_onoff_rates(
            sources=20,
            duration=400.0,
            bin_width=0.2,
            rng=rng,
            alpha=1.6,
            mean_period=0.2,
            peak_rate=1.0,
        )
        assert rates.mean() == pytest.approx(10.0, rel=0.15)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError, match="sources"):
            aggregate_onoff_rates(sources=0, duration=1.0, bin_width=0.1, rng=rng)
        with pytest.raises(ValueError, match="one bin"):
            aggregate_onoff_rates(sources=1, duration=0.05, bin_width=0.1, rng=rng)

    def test_aggregate_is_lrd(self, rng):
        from repro.analysis.hurst import variance_time_hurst

        rates = aggregate_onoff_rates(
            sources=30, duration=2000.0, bin_width=0.1, rng=rng, alpha=1.3, mean_period=0.2
        )
        estimate = variance_time_hurst(rates)
        # Target H = 0.85; the estimator is biased but must clearly exceed
        # the SRD value of 0.5.
        assert estimate.hurst > 0.65
