"""Tests for the M/G/infinity session model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.truncated_pareto import TruncatedPareto
from repro.traffic.mginf import mginf_mean_rate, mginf_rates


@pytest.fixture
def duration_law() -> TruncatedPareto:
    # A finite cutoff keeps the residual life manageable so the warm-up
    # stationarization is accurate in tests.
    return TruncatedPareto.from_mean_interval(0.5, alpha=1.5, cutoff=20.0)


class TestMeanRate:
    def test_little_law(self, duration_law):
        assert mginf_mean_rate(4.0, duration_law) == pytest.approx(4.0 * duration_law.mean)

    def test_rejects_bad_rate(self, duration_law):
        with pytest.raises(ValueError, match="arrival_rate"):
            mginf_mean_rate(0.0, duration_law)


class TestRates:
    def test_shape_and_nonnegativity(self, duration_law, rng):
        rates = mginf_rates(
            arrival_rate=5.0, duration_law=duration_law, duration=50.0, bin_width=0.5, rng=rng
        )
        assert rates.shape == (100,)
        assert np.all(rates >= 0.0)

    def test_mean_matches_little(self, duration_law, rng):
        rates = mginf_rates(
            arrival_rate=10.0,
            duration_law=duration_law,
            duration=2000.0,
            bin_width=0.5,
            rng=rng,
            warmup_factor=100.0,
        )
        assert rates.mean() == pytest.approx(mginf_mean_rate(10.0, duration_law), rel=0.1)

    def test_counts_are_integer_valued_for_aligned_sessions(self, rng):
        # With deterministic-ish very long sessions, per-bin counts stay near
        # the active-session count; just sanity-check boundedness.
        law = TruncatedPareto.from_mean_interval(5.0, alpha=1.9, cutoff=50.0)
        rates = mginf_rates(
            arrival_rate=1.0, duration_law=law, duration=100.0, bin_width=1.0, rng=rng
        )
        assert rates.max() < 100.0

    def test_rejects_short_window(self, duration_law, rng):
        with pytest.raises(ValueError, match="one bin"):
            mginf_rates(
                arrival_rate=1.0, duration_law=duration_law, duration=0.1, bin_width=0.5, rng=rng
            )
