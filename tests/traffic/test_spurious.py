"""Tests for the spurious-LRD (non-stationary SRD) generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hurst import variance_time_hurst
from repro.analysis.whittle import whittle_hurst
from repro.traffic.spurious import (
    ar1_process,
    dirac_pulse_process,
    hyperbolic_trend_process,
    level_shift_process,
)

N = 32768


class TestAr1:
    def test_moments(self, rng):
        path = ar1_process(N, 0.5, rng, mean=2.0, std=1.5)
        assert path.mean() == pytest.approx(2.0, abs=0.15)
        assert path.std() == pytest.approx(1.5, rel=0.1)

    def test_lag_one_correlation(self, rng):
        path = ar1_process(N, 0.6, rng)
        centered = path - path.mean()
        rho = float(np.mean(centered[:-1] * centered[1:]) / np.mean(centered**2))
        assert rho == pytest.approx(0.6, abs=0.05)

    def test_is_genuinely_srd(self, rng):
        path = ar1_process(N, 0.3, rng)
        estimate = variance_time_hurst(path, min_block=32)
        assert estimate.hurst == pytest.approx(0.5, abs=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="coefficient"):
            ar1_process(100, 1.0, rng)
        with pytest.raises(ValueError, match="length"):
            ar1_process(1, 0.5, rng)


class TestSpuriousLrd:
    """Each confounder is SRD/non-stationary yet reads as H >> 1/2."""

    def test_level_shifts_fool_variance_time(self, rng):
        clean = ar1_process(N, 0.3, np.random.default_rng(1))
        shifty = level_shift_process(N, np.random.default_rng(1), mean_run=1024)
        h_clean = variance_time_hurst(clean).hurst
        h_shifty = variance_time_hurst(shifty).hurst
        assert h_clean < 0.62
        assert h_shifty > h_clean + 0.15

    def test_hyperbolic_trend_fools_estimators(self):
        trended = hyperbolic_trend_process(
            N, np.random.default_rng(2), trend_scale=5.0, beta=0.3
        )
        assert variance_time_hurst(trended).hurst > 0.65

    def test_durational_pulses_inflate_estimates(self):
        clean = ar1_process(N, 0.3, np.random.default_rng(3))
        pulsed = dirac_pulse_process(N, np.random.default_rng(3))
        assert whittle_hurst(pulsed).hurst > whittle_hurst(clean).hurst + 0.1
        assert variance_time_hurst(pulsed).hurst > variance_time_hurst(clean).hurst + 0.2

    def test_level_shift_mean_jumps(self, rng):
        path = level_shift_process(4096, rng, mean_run=256, shift_std=4.0)
        # Block means must vary far more than an SRD process allows.
        blocks = path[:4096].reshape(16, 256).mean(axis=1)
        assert blocks.std() > 0.5

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="mean_run"):
            level_shift_process(100, rng, mean_run=1)
        with pytest.raises(ValueError, match="beta"):
            hyperbolic_trend_process(100, rng, beta=1.5)
        with pytest.raises(ValueError, match="pulse_probability"):
            dirac_pulse_process(100, rng, pulse_probability=2.0)
