"""Properties of the Markov-modulated source family (Clegg's construction).

The construction promises three things the rest of the harness leans on:
the rate marginal is matched *exactly* (rates are i.i.d. draws at phase
exits), the ``(level, phase)`` CTMC's stationary law marginalizes back to
the rate law, and sampling follows the seeded-generator protocol shared
with ``fgn``/``onoff``/``mginf`` — bit-reproducible per seed, independent
across ``SeedSequence`` spawn keys, and untouched by hash randomization.
Hypothesis drives the first two across the whole ``(H, phases)`` design
space instead of a handful of fixtures.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource, SourcePath
from repro.core.truncated_pareto import TruncatedPareto
from repro.traffic import MarkovModulatedSource, mmpp_rates

hursts = st.floats(min_value=0.55, max_value=0.95)
phase_counts = st.integers(min_value=2, max_value=12)


@st.composite
def marginals(draw) -> DiscreteMarginal:
    levels = draw(st.integers(min_value=2, max_value=4))
    rates = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=8.0),
                min_size=levels,
                max_size=levels,
                unique=True,
            )
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=levels,
            max_size=levels,
        )
    )
    total = sum(weights)
    return DiscreteMarginal(rates=rates, probs=[w / total for w in weights])


def model_from(marginal: DiscreteMarginal, hurst: float, phases: int):
    return MarkovModulatedSource.from_hurst(
        marginal, hurst=hurst, mean_interval=0.05, horizon=10.0, phases=phases
    )


# --------------------------------------------------------------------- #
# exact moment / stationary-law properties
# --------------------------------------------------------------------- #


@given(marginal=marginals(), hurst=hursts, phases=phase_counts)
@settings(max_examples=60, deadline=None)
def test_moments_match_marginal_exactly(marginal, hurst, phases):
    model = model_from(marginal, hurst, phases)
    assert model.mean_rate == marginal.mean
    assert model.rate_variance == marginal.variance
    # The hyperexponential fit may prune degenerate phases, never add any.
    assert 1 <= model.phases <= phases
    assert model.states == marginal.size * model.phases


@given(marginal=marginals(), hurst=hursts, phases=phase_counts)
@settings(max_examples=60, deadline=None)
def test_stationary_distribution_round_trips(marginal, hurst, phases):
    # Marginalizing the (level, phase) occupation over phases must return
    # the rate law; over levels, the time-stationary phase weights.
    model = model_from(marginal, hurst, phases)
    occupation = model.stationary_probs()
    assert occupation.shape == (marginal.size, model.phases)
    assert occupation.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(
        occupation.sum(axis=1), np.asarray(marginal.probs), rtol=1e-12
    )


@given(marginal=marginals(), hurst=hursts, phases=phase_counts)
@settings(max_examples=40, deadline=None)
def test_autocorrelation_is_a_decreasing_correlation(marginal, hurst, phases):
    model = model_from(marginal, hurst, phases)
    lags = np.linspace(0.0, 5.0, 32)
    acf = np.asarray(model.autocorrelation(lags))
    assert acf[0] == pytest.approx(1.0)
    assert np.all(np.diff(acf) <= 1e-12)
    assert np.all(acf > 0.0)
    np.testing.assert_allclose(
        np.asarray(model.autocovariance(lags)), model.rate_variance * acf
    )


def test_from_source_matches_interval_ccdf(small_source):
    # The sojourn mixture is a hyperexponential fit of the source's own
    # interarrival ccdf over [theta, cutoff].
    model = MarkovModulatedSource.from_source(small_source, phases=8)
    law = small_source.interarrival
    assert model.hurst == pytest.approx(law.hurst)
    assert model.horizon == law.cutoff
    lags = np.geomspace(law.theta, law.cutoff, 16)
    fitted = np.asarray(model.sojourn_sf(lags))
    target = np.asarray([law.sf(t) for t in lags])
    assert np.max(np.abs(fitted - target)) < 0.05


def test_infinite_cutoff_gets_a_finite_horizon():
    marginal = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
    source = CutoffFluidSource(
        marginal=marginal,
        interarrival=TruncatedPareto(theta=0.05, alpha=1.4, cutoff=math.inf),
    )
    model = MarkovModulatedSource.from_source(source)
    assert math.isfinite(model.horizon) and model.horizon > source.interarrival.theta


def test_constructor_validation():
    marginal = DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5])
    with pytest.raises(ValueError):
        MarkovModulatedSource(
            marginal=marginal,
            phase_weights=np.array([0.5, 0.6]),  # does not sum to one
            phase_rates=np.array([1.0, 2.0]),
            target_hurst=0.8,
            horizon=1.0,
        )
    with pytest.raises(ValueError):
        MarkovModulatedSource(
            marginal=marginal,
            phase_weights=np.array([1.0]),
            phase_rates=np.array([-1.0]),
            target_hurst=0.8,
            horizon=1.0,
        )


# --------------------------------------------------------------------- #
# seeded-generator protocol
# --------------------------------------------------------------------- #


def test_sample_path_is_deterministic(small_source):
    model = MarkovModulatedSource.from_source(small_source)
    a = model.sample_path(200, np.random.default_rng(7))
    b = model.sample_path(200, np.random.default_rng(7))
    assert isinstance(a, SourcePath)
    np.testing.assert_array_equal(a.durations, b.durations)
    np.testing.assert_array_equal(a.rates, b.rates)


def test_rates_deterministic_under_spawn_keys(small_source):
    # The harness hands out per-purpose generators via SeedSequence spawn
    # keys: equal keys must replay bit-identically, sibling keys must
    # give genuinely different streams.
    model = MarkovModulatedSource.from_source(small_source)

    def rates(spawn_key):
        seq = np.random.SeedSequence(entropy=20260808, spawn_key=spawn_key)
        return mmpp_rates(model, 20.0, 0.05, np.random.default_rng(seq))

    np.testing.assert_array_equal(rates((0,)), rates((0,)))
    assert not np.array_equal(rates((0,)), rates((1,)))


def test_segments_follow_sample_path(small_source):
    # The lazy stream draws 1024-interval batches; its prefix must match
    # an explicit sample_path of the same batch size and seed.
    model = MarkovModulatedSource.from_source(small_source)
    stream = model.segments(np.random.default_rng(3))
    pairs = [next(stream) for _ in range(64)]
    path = model.sample_path(1024, np.random.default_rng(3))
    np.testing.assert_allclose([d for d, _ in pairs], path.durations[:64])
    np.testing.assert_allclose([r for _, r in pairs], path.rates[:64])


_SUBPROCESS_SCRIPT = """
import json, sys
import numpy as np
from repro.core.marginal import DiscreteMarginal
from repro.traffic import MarkovModulatedSource, mmpp_rates

marginal = DiscreteMarginal(rates=[0.0, 1.0, 4.0], probs=[0.3, 0.5, 0.2])
model = MarkovModulatedSource.from_hurst(
    marginal, hurst=0.8, mean_interval=0.05, horizon=5.0, phases=6
)
rates = mmpp_rates(model, 30.0, 0.05, np.random.default_rng(20260808))
json.dump({"n": rates.size, "rates": [float(v).hex() for v in rates]}, sys.stdout)
"""


@pytest.mark.slow
def test_rates_independent_of_hash_randomization():
    """PYTHONHASHSEED must not leak into the sampled path."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1] == outputs[2]
    assert outputs[0]["n"] > 0
