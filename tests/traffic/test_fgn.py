"""Tests for the Davies-Harte fGn generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.acf import autocovariance
from repro.traffic.fgn import (
    fgn_autocovariance,
    generate_fbm,
    generate_fgn,
    sample_stationary_gaussian,
)


class TestAutocovariance:
    def test_lag_zero_is_unit_variance(self):
        gamma = fgn_autocovariance(0.7, 10)
        assert gamma[0] == pytest.approx(1.0)

    def test_half_is_white_noise(self):
        gamma = fgn_autocovariance(0.5, 10)
        np.testing.assert_allclose(gamma[1:], 0.0, atol=1e-12)

    def test_persistent_for_high_hurst(self):
        gamma = fgn_autocovariance(0.9, 100)
        assert np.all(gamma > 0.0)
        assert np.all(np.diff(gamma[1:]) < 0.0)  # decreasing

    def test_antipersistent_for_low_hurst(self):
        gamma = fgn_autocovariance(0.3, 10)
        assert gamma[1] < 0.0

    def test_power_law_tail(self):
        hurst = 0.8
        gamma = fgn_autocovariance(hurst, 4000)
        # gamma(k) ~ H(2H-1) k^{2H-2} for large k.
        k = 2000
        expected = hurst * (2 * hurst - 1) * k ** (2 * hurst - 2)
        assert gamma[k] == pytest.approx(expected, rel=0.01)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="hurst"):
            fgn_autocovariance(1.0, 10)
        with pytest.raises(ValueError, match="lags"):
            fgn_autocovariance(0.7, 0)


class TestSampler:
    def test_moments(self, rng):
        path = generate_fgn(65536, 0.8, rng, mean=3.0, std=2.0)
        assert path.mean() == pytest.approx(3.0, abs=0.5)  # LRD -> slow mean convergence
        assert path.std() == pytest.approx(2.0, rel=0.1)

    def test_white_noise_case(self, rng):
        path = generate_fgn(16384, 0.5, rng)
        acf = autocovariance(path, 5)
        assert acf[0] == pytest.approx(1.0, rel=0.05)
        assert abs(acf[1]) < 0.05

    def test_empirical_acf_matches_theory(self, rng):
        hurst = 0.75
        path = generate_fgn(65536, hurst, rng)
        empirical = autocovariance(path, 3)
        theory = fgn_autocovariance(hurst, 4)
        np.testing.assert_allclose(empirical, theory, atol=0.05)

    def test_deterministic_given_rng(self):
        a = generate_fgn(256, 0.7, np.random.default_rng(5))
        b = generate_fgn(256, 0.7, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_short_length(self, rng):
        with pytest.raises(ValueError, match="length"):
            generate_fgn(1, 0.7, rng)

    def test_rejects_bad_std(self, rng):
        with pytest.raises(ValueError, match="std"):
            generate_fgn(64, 0.7, rng, std=0.0)

    def test_fbm_is_cumulative(self, rng):
        fbm = generate_fbm(128, 0.7, np.random.default_rng(9))
        fgn = generate_fgn(128, 0.7, np.random.default_rng(9))
        np.testing.assert_allclose(fbm, np.cumsum(fgn))

    def test_generic_sampler_rejects_indefinite(self, rng):
        # A covariance that is not non-negative definite must raise.
        bad = np.array([1.0, 0.99, -0.99, 0.99])
        with pytest.raises(ValueError, match="non-negative definite"):
            sample_stationary_gaussian(bad, rng)

    def test_generic_sampler_exponential_acf(self, rng):
        # AR(1)-like covariance: rho^k is a valid acvf.
        rho = 0.6
        gamma = rho ** np.arange(8192)
        path = sample_stationary_gaussian(gamma, rng)
        empirical = autocovariance(path, 3)
        assert empirical[1] / empirical[0] == pytest.approx(rho, abs=0.05)
