"""Tests for the Trace container and trace-to-model calibration."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.traffic.trace import Trace


@pytest.fixture
def simple_trace() -> Trace:
    return Trace(rates=np.array([1.0, 3.0, 1.0, 3.0, 2.0, 2.0, 2.0, 2.0]), bin_width=0.5)


class TestBasics:
    def test_statistics(self, simple_trace):
        assert simple_trace.n_bins == 8
        assert simple_trace.duration == pytest.approx(4.0)
        assert simple_trace.mean_rate == pytest.approx(2.0)
        assert simple_trace.peak_rate == 3.0
        assert simple_trace.total_work == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="two samples"):
            Trace(rates=np.array([1.0]), bin_width=0.1)
        with pytest.raises(ValueError, match="non-negative"):
            Trace(rates=np.array([-1.0, 1.0]), bin_width=0.1)
        with pytest.raises(ValueError, match="bin_width"):
            Trace(rates=np.array([1.0, 2.0]), bin_width=0.0)
        with pytest.raises(ValueError, match="finite"):
            Trace(rates=np.array([1.0, math.nan]), bin_width=0.1)

    def test_rates_immutable(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.rates[0] = 9.0


class TestTransforms:
    def test_aggregate_preserves_work(self, simple_trace):
        coarse = simple_trace.aggregate(2)
        assert coarse.n_bins == 4
        assert coarse.bin_width == pytest.approx(1.0)
        assert coarse.total_work == pytest.approx(simple_trace.total_work)
        assert coarse.mean_rate == pytest.approx(simple_trace.mean_rate)

    def test_aggregate_drops_remainder(self):
        trace = Trace(rates=np.arange(1.0, 8.0), bin_width=1.0)  # 7 samples
        coarse = trace.aggregate(3)
        assert coarse.n_bins == 2

    def test_aggregate_factor_one_identity(self, simple_trace):
        assert simple_trace.aggregate(1) is simple_trace

    def test_rescaled(self, simple_trace):
        scaled = simple_trace.rescaled(4.0)
        assert scaled.mean_rate == pytest.approx(4.0)
        assert scaled.rate_std == pytest.approx(2.0 * simple_trace.rate_std)

    def test_head(self, simple_trace):
        head = simple_trace.head(4)
        assert head.n_bins == 4
        np.testing.assert_allclose(head.rates, simple_trace.rates[:4])
        with pytest.raises(ValueError, match="n_bins"):
            simple_trace.head(100)


class TestPersistence:
    def test_round_trip(self, simple_trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        simple_trace.save(path)
        loaded = Trace.load(path)
        np.testing.assert_array_equal(loaded.rates, simple_trace.rates)
        assert loaded.bin_width == simple_trace.bin_width
        assert loaded.name == simple_trace.name

    def test_round_trip_with_name(self, tmp_path):
        trace = Trace(rates=np.array([1.0, 2.0]), bin_width=0.5, name="demo")
        path = str(tmp_path / "named.npz")
        trace.save(path)
        assert Trace.load(path).name == "demo"


class TestCalibration:
    def test_marginal_mean(self, mtv_trace_small):
        marginal = mtv_trace_small.marginal(50)
        assert marginal.mean == pytest.approx(mtv_trace_small.mean_rate, rel=0.02)
        assert marginal.size <= 50

    def test_mean_epoch_duration_simple(self):
        # Alternating extremes: bin index changes every sample -> run length 1.
        trace = Trace(rates=np.array([0.0, 10.0] * 20), bin_width=0.1)
        assert trace.mean_epoch_duration(bins=10) == pytest.approx(0.1)

    def test_mean_epoch_duration_runs(self):
        # Runs of 3 samples per bin: mean run length 3 -> epoch 0.3 s.
        trace = Trace(rates=np.array([1.0, 1.0, 1.0, 9.0, 9.0, 9.0] * 4), bin_width=0.1)
        assert trace.mean_epoch_duration(bins=2) == pytest.approx(0.3)

    def test_constant_trace_epoch_is_duration(self):
        trace = Trace(rates=np.full(10, 2.0), bin_width=0.1)
        assert trace.mean_epoch_duration() == pytest.approx(1.0)

    def test_to_source_calibration(self, mtv_trace_small):
        source = mtv_trace_small.to_source(hurst=0.83)
        assert source.hurst == pytest.approx(0.83)
        assert source.mean_rate == pytest.approx(mtv_trace_small.mean_rate, rel=0.02)
        epoch = mtv_trace_small.mean_epoch_duration(50)
        # theta calibrated at T_c = inf: E[T] = theta / (alpha - 1) = epoch.
        law = source.interarrival
        assert law.theta / (law.alpha - 1.0) == pytest.approx(epoch)

    def test_to_source_with_cutoff(self, mtv_trace_small):
        source = mtv_trace_small.to_source(hurst=0.83, cutoff=2.0)
        assert source.cutoff == 2.0
