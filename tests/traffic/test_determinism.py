"""Determinism: every stochastic function reproduces exactly from its seed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marginal import DiscreteMarginal
from repro.core.source import CutoffFluidSource
from repro.core.truncated_pareto import TruncatedPareto
from repro.traffic.farima import generate_farima
from repro.traffic.fgn import generate_fgn
from repro.traffic.mginf import mginf_rates
from repro.traffic.onoff import aggregate_onoff_rates
from repro.traffic.shuffle import external_shuffle, internal_shuffle
from repro.traffic.spurious import (
    ar1_process,
    dirac_pulse_process,
    hyperbolic_trend_process,
    level_shift_process,
)


def _twice(factory):
    a = factory(np.random.default_rng(123))
    b = factory(np.random.default_rng(123))
    return a, b


GENERATORS = {
    "fgn": lambda rng: generate_fgn(512, 0.8, rng),
    "farima": lambda rng: generate_farima(512, 0.3, rng),
    "ar1": lambda rng: ar1_process(512, 0.4, rng),
    "level_shift": lambda rng: level_shift_process(512, rng, mean_run=64),
    "hyperbolic": lambda rng: hyperbolic_trend_process(512, rng),
    "pulses": lambda rng: dirac_pulse_process(512, rng, pulse_probability=0.01),
    "onoff": lambda rng: aggregate_onoff_rates(
        sources=3, duration=10.0, bin_width=0.1, rng=rng, mean_period=0.5
    ),
    "mginf": lambda rng: mginf_rates(
        arrival_rate=5.0,
        duration_law=TruncatedPareto.from_mean_interval(0.3, 1.5, cutoff=5.0),
        duration=10.0,
        bin_width=0.1,
        rng=rng,
    ),
    "external_shuffle": lambda rng: external_shuffle(np.arange(100.0), 7, rng),
    "internal_shuffle": lambda rng: internal_shuffle(np.arange(100.0), 7, rng),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generator_is_deterministic(name):
    a, b = _twice(GENERATORS[name])
    np.testing.assert_array_equal(a, b)


def test_source_sampling_deterministic():
    source = CutoffFluidSource(
        marginal=DiscreteMarginal(rates=[0.0, 2.0], probs=[0.5, 0.5]),
        interarrival=TruncatedPareto(theta=0.1, alpha=1.4, cutoff=5.0),
    )
    path_a = source.sample_path(100, np.random.default_rng(9))
    path_b = source.sample_path(100, np.random.default_rng(9))
    np.testing.assert_array_equal(path_a.durations, path_b.durations)
    np.testing.assert_array_equal(path_a.rates, path_b.rates)


def test_different_seeds_differ():
    a = generate_fgn(512, 0.8, np.random.default_rng(1))
    b = generate_fgn(512, 0.8, np.random.default_rng(2))
    assert not np.array_equal(a, b)


def test_solver_is_fully_deterministic(small_source):
    from repro.core.solver import FluidQueue

    results = [
        FluidQueue(source=small_source, service_rate=1.25, buffer_size=0.7).loss_rate()
        for _ in range(2)
    ]
    assert results[0].lower == results[1].lower
    assert results[0].upper == results[1].upper
    assert results[0].iterations == results[1].iterations
